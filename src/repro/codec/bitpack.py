"""Vectorised fixed-width integer bit packing.

The transform codecs quantise each frequency band to a per-band integer
width and pack the values back to back.  Packing and unpacking are done
entirely with numpy so that minutes of CD audio encode in well under a
second — important because the benchmark scenarios push dozens of
stream-minutes through the codecs.
"""

from __future__ import annotations

import numpy as np


def pack_uint(values: np.ndarray, width: int) -> bytes:
    """Pack unsigned ints < 2**width into a big-endian bitstream.

    The result is padded with zero bits to a whole byte.
    """
    if width < 1 or width > 16:
        raise ValueError(f"width out of range: {width}")
    vals = np.asarray(values, dtype=np.uint32)
    if vals.size == 0:
        return b""
    if vals.max(initial=0) >= (1 << width):
        raise ValueError(f"value does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint32)
    bits = ((vals[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1)).tobytes()


def unpack_uint(data: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_uint`; returns ``count`` unsigned ints."""
    if width < 1 or width > 16:
        raise ValueError(f"width out of range: {width}")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    needed_bits = width * count
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    if len(bits) < needed_bits:
        raise ValueError(
            f"bitstream too short: have {len(bits)} bits, need {needed_bits}"
        )
    bits = bits[:needed_bits].reshape(count, width).astype(np.int64)
    weights = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
    return bits @ weights


def packed_size(width: int, count: int) -> int:
    """Bytes produced by ``pack_uint`` for ``count`` values of ``width``."""
    return (width * count + 7) // 8


def pack_int(values: np.ndarray, width: int) -> bytes:
    """Pack signed ints in [-2**(w-1), 2**(w-1)) via offset binary."""
    vals = np.asarray(values, dtype=np.int64)
    offset = 1 << (width - 1)
    if vals.size and (vals.min() < -offset or vals.max() >= offset):
        raise ValueError(f"signed value does not fit in {width} bits")
    return pack_uint((vals + offset).astype(np.uint32), width)


def unpack_int(data: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_int`."""
    offset = 1 << (width - 1)
    return unpack_uint(data, width, count) - offset
