"""The MDCT psychoacoustic codec standing in for Ogg Vorbis.

A real lossy transform codec: sine-windowed MDCT, Bark-band grouping,
masking-driven bit allocation, block-floating-point quantisation, and
vectorised bit packing.  Each encoded block is fully self-contained so a
speaker can decode any packet in isolation.

The 0–10 ``quality`` index mirrors the paper's use of Vorbis: "we simply set
the Ogg Vorbis quality index to its maximum [so] the algorithm throws away
as little data as possible while still providing adequate compression"
(§2.2).
"""

from __future__ import annotations

import struct
from functools import lru_cache

import numpy as np

from repro.codec import bitpack, rice
from repro.codec.base import BlockCodec, CodecID, register_codec
from repro.codec.batch import (
    BatchFallback,
    decode_bands_batched,
    encode_bands_batched,
)
from repro.codec.mdct import mdct_analysis, mdct_synthesis
from repro.codec.psycho import PsychoModel

_HEADER = struct.Struct("<BBBBIH")  # codec, quality, channels, log2n, samples, frames


@lru_cache(maxsize=16)
def _model(sample_rate: int, n: int) -> PsychoModel:
    return PsychoModel(sample_rate, n)


class VorbisLikeCodec(BlockCodec):
    """Encoder/decoder pair with a Vorbis-style quality index.

    Parameters
    ----------
    quality:
        0 (smallest, roughest) .. 10 (the paper's "maximum quality index").
    sample_rate:
        used only by the psychoacoustic model's Bark mapping.
    frame_size:
        MDCT coefficients per frame; must be a power of two.
    """

    codec_id = CodecID.VORBIS_LIKE

    def __init__(
        self,
        quality: int = 10,
        sample_rate: int = 44100,
        frame_size: int = 512,
        entropy: str = "fixed",
        window_switching: bool = False,
        batched: bool = True,
    ):
        if not 0 <= quality <= 10:
            raise ValueError(f"quality must be 0..10: {quality}")
        if frame_size & (frame_size - 1) or frame_size < 64:
            raise ValueError(f"frame_size must be a power of two >= 64")
        if entropy not in ("fixed", "rice"):
            raise ValueError(f"unknown entropy coder: {entropy}")
        self.quality = quality
        self.sample_rate = sample_rate
        self.frame_size = frame_size
        #: transient-adaptive frames: a block with a sharp attack is coded
        #: with short frames so quantisation noise cannot smear backwards
        #: in time (pre-echo) across a long window.  The packet header
        #: carries the frame size, so decoders need no configuration.
        self.window_switching = window_switching
        #: "fixed" = per-band fixed-width packing (fast); "rice" =
        #: Rice-coded residue (smaller, FLAC-style).  The decoder handles
        #: both regardless of this setting — each band is tagged.
        self.entropy = entropy
        #: whole-block vectorised kernels (:mod:`repro.codec.batch`);
        #: bit-identical to the per-frame reference loops, which survive
        #: as ``_reference_*`` and handle the inputs the batch kernels
        #: refuse (non-finite coefficients, malformed streams)
        self.batched = batched
        self._log2n = frame_size.bit_length() - 1

    # -- encoding ---------------------------------------------------------------

    def encode_block(self, samples: np.ndarray) -> bytes:
        x = np.asarray(samples, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        num_samples, channels = x.shape
        if channels not in (1, 2):
            raise ValueError(f"1 or 2 channels required, got {channels}")
        if channels == 2:
            planes = [(x[:, 0] + x[:, 1]) / 2.0, (x[:, 0] - x[:, 1]) / 2.0]
        else:
            planes = [x[:, 0]]

        frame_size = self._pick_frame_size(planes)
        model = _model(self.sample_rate, frame_size)
        coeffs_list = []
        num_frames = 0
        for plane in planes:
            coeffs, _ = mdct_analysis(plane, frame_size)
            num_frames = coeffs.shape[0]
            coeffs_list.append(coeffs)
        header = _HEADER.pack(
            int(self.codec_id),
            self.quality,
            channels,
            frame_size.bit_length() - 1,
            num_samples,
            num_frames,
        )
        if self.batched:
            try:
                # planes stacked frame-major preserves the wire order:
                # every frame of the mid plane, then every side frame
                all_coeffs = np.concatenate(coeffs_list, axis=0)
                energies = model.band_energies(all_coeffs)
                widths = model.allocate_widths(energies, self.quality)
                body = encode_bands_batched(
                    all_coeffs,
                    model.edges,
                    widths,
                    min_width=1,
                    use_rice=self.entropy == "rice",
                )
                return header + body
            except BatchFallback:
                pass
        chunks = []
        for coeffs in coeffs_list:
            for frame in coeffs:
                chunks.append(self._reference_encode_frame(frame, model))
        return header + b"".join(chunks)

    #: a segment this much louder than the block's quiet parts is an attack
    TRANSIENT_RATIO = 30.0

    def _pick_frame_size(self, planes) -> int:
        """Long frames normally; short frames when the block has an attack."""
        if not self.window_switching:
            return self.frame_size
        short = max(64, self.frame_size // 4)
        mono = planes[0]
        n_seg = 16
        seg = max(1, len(mono) // n_seg)
        if seg < 8:
            return self.frame_size
        usable = (len(mono) // seg) * seg
        energies = (
            np.square(mono[:usable]).reshape(-1, seg).mean(axis=1)
        )
        quiet = float(np.median(energies)) + 1e-12
        if float(energies.max()) / quiet > self.TRANSIENT_RATIO:
            return short
        return self.frame_size

    def _reference_encode_frame(
        self, frame: np.ndarray, model: PsychoModel
    ) -> bytes:
        """Scalar per-band loop the batched kernel must match byte for
        byte; also the fallback for inputs the kernel refuses."""
        energies = model.band_energies(frame)
        widths = model.allocate_widths(energies, self.quality)
        parts = []
        for b in range(model.n_bands):
            width = int(widths[b])
            lo, hi = model.edges[b], model.edges[b + 1]
            band = frame[lo:hi]
            amax = float(np.max(np.abs(band))) if hi > lo else 0.0
            if width == 0 or amax == 0.0:
                parts.append(b"\x00")
                continue
            top = (1 << (width - 1)) - 1
            exponent = int(np.ceil(np.log2(amax / top)))
            exponent = max(-120, min(120, exponent))
            step = 2.0**exponent
            q = np.clip(np.round(band / step), -top - 1, top).astype(np.int64)
            if self.entropy == "rice":
                # adaptive: Rice wins on peaky bands (quiet coefficients
                # under a few spectral lines), fixed width wins on dense
                # ones — pick per band, the decoder handles either tag
                k = rice.best_k(q)
                rice_bytes = rice.rice_size_bytes(q, k) + 2
                fixed_bytes = bitpack.packed_size(width, len(q))
                if rice_bytes < fixed_bytes:
                    payload = rice.rice_encode(q, k)
                    parts.append(
                        struct.pack(
                            "<BbH", 0x80 | k, exponent, len(payload)
                        )
                        + payload
                    )
                    continue
            parts.append(
                struct.pack("<Bb", width, exponent)
                + bitpack.pack_int(q, width)
            )
        return b"".join(parts)

    # -- decoding ---------------------------------------------------------------

    def decode_block(self, data: bytes) -> np.ndarray:
        codec, quality, channels, log2n, num_samples, num_frames = (
            _HEADER.unpack_from(data, 0)
        )
        if codec != int(self.codec_id):
            raise ValueError(f"not a vorbislike block (codec id {codec})")
        n = 1 << log2n
        model = _model(self.sample_rate, n)
        planes = None
        if self.batched:
            try:
                planes = []
                offset = _HEADER.size
                for _ in range(channels):
                    coeffs, offset = decode_bands_batched(
                        data, offset, num_frames, model.edges
                    )
                    planes.append(mdct_synthesis(coeffs, num_samples))
            except BatchFallback:
                # malformed stream: the reference walker's exact error
                # is the contract, so re-decode from the block start
                planes = None
        if planes is None:
            offset = _HEADER.size
            planes = []
            for _ in range(channels):
                coeffs = np.zeros((num_frames, n))
                for f in range(num_frames):
                    offset = self._reference_decode_frame(
                        data, offset, coeffs[f], model
                    )
                planes.append(mdct_synthesis(coeffs, num_samples))
        if channels == 2:
            mid, side = planes
            out = np.stack([mid + side, mid - side], axis=1)
        else:
            out = planes[0][:, None]
        return np.clip(out, -1.0, 1.0)

    def _reference_decode_frame(
        self, data: bytes, offset: int, out: np.ndarray, model: PsychoModel
    ) -> int:
        for b in range(model.n_bands):
            tag = data[offset]
            offset += 1
            if tag == 0:
                continue
            (exponent,) = struct.unpack_from("<b", data, offset)
            offset += 1
            lo, hi = model.edges[b], model.edges[b + 1]
            count = hi - lo
            if tag & 0x80:  # Rice-coded band
                k = tag & 0x7F
                (nbytes,) = struct.unpack_from("<H", data, offset)
                offset += 2
                q = rice._reference_rice_decode(
                    data[offset : offset + nbytes], k, count
                )
            else:  # fixed-width band
                nbytes = bitpack.packed_size(tag, count)
                q = bitpack.unpack_int(
                    data[offset : offset + nbytes], tag, count
                )
            offset += nbytes
            out[lo:hi] = q * (2.0**exponent)
        return offset


register_codec(CodecID.VORBIS_LIKE, VorbisLikeCodec)
