"""Microphone capture device (§5.2).

The EON 4000 has a mic input; the auto-volume plan is that the ES
"compare its own output against the ambient levels" through it.  This is
the record-side audio path: a capture ring filled at the sample rate from
the acoustic :class:`~repro.audio.room.Room`, read by applications with
plain blocking ``read()`` calls.

The synthesised mic waveform is ambient-level-scaled noise plus the
speaker's coupled output level — enough for any RMS/level-based
processing, which is what volume controllers do.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.audio.encodings import encode_samples
from repro.audio.params import AudioParams
from repro.audio.room import Room
from repro.kernel.audio import AUDIO_GETINFO, AUDIO_SETINFO
from repro.kernel.devices import CharDevice, DeviceError
from repro.sim.resources import Signal


class MicDevice(CharDevice):
    """``/dev/mic``: blocking capture of the room's sound field."""

    def __init__(
        self,
        machine,
        room: Room,
        params: AudioParams | None = None,
        block_seconds: float = 0.05,
        ring_blocks: int = 16,
        seed: int = 0,
    ):
        self.machine = machine
        self.room = room
        self.params = params or AudioParams()
        self.block_seconds = block_seconds
        self.ring_blocks = ring_blocks
        self._rng = np.random.default_rng(seed)
        self._chunks: deque[bytes] = deque()
        self._level = 0
        self._data = Signal("mic/data")
        self._capturing = False
        self.blocks_captured = 0
        self.overruns = 0

    # -- capture engine ---------------------------------------------------------

    def open(self, machine, flags: str = "rw"):
        if not self._capturing:
            self._capturing = True
            # the first block completes after one block of sound exists
            self.machine.sim.schedule(self.block_seconds, self._tick)
        return self

    def close(self, handle) -> None:
        self._capturing = False

    def _tick(self) -> None:
        if not self._capturing:
            return
        now = self.machine.sim.now
        frames = self.params.bytes_for(self.block_seconds) // \
            self.params.frame_bytes
        ambient = self.room.ambient_rms(now)
        own = self.room.coupling * self.room.speaker_rms
        # noise at the combined power level the mic would measure
        level = float(np.sqrt(ambient**2 + own**2))
        samples = np.clip(
            self._rng.standard_normal(frames) * level, -1.0, 1.0
        )
        block = encode_samples(samples, self.params)
        if self._level >= self.ring_blocks * len(block):
            self.overruns += 1  # reader too slow: oldest data lost
            self._chunks.popleft()
            self._level -= len(block)
        self._chunks.append(block)
        self._level += len(block)
        self.blocks_captured += 1
        self.machine.cpu.charge(self.machine.intr_cycles, domain="intr")
        self._data.fire()
        self.machine.sim.schedule(self.block_seconds, self._tick)

    # -- device entry points ------------------------------------------------------

    def read(self, handle, nbytes: int):
        """Blocking capture read: waits until ``nbytes`` are available."""
        while self._level < nbytes:
            yield self._data.wait()
        parts = []
        need = nbytes
        while need > 0:
            chunk = self._chunks.popleft()
            if len(chunk) <= need:
                parts.append(chunk)
                need -= len(chunk)
            else:
                parts.append(chunk[:need])
                self._chunks.appendleft(chunk[need:])
                need = 0
        data = b"".join(parts)
        self._level -= len(data)
        return data

    def ioctl(self, handle, cmd: int, arg=None):
        if cmd == AUDIO_SETINFO:
            if not isinstance(arg, AudioParams):
                raise DeviceError("AUDIO_SETINFO needs AudioParams")
            self.params = arg
            return None
        if cmd == AUDIO_GETINFO:
            return {"params": self.params, "level": self._level}
        raise DeviceError(f"mic: unsupported ioctl {cmd:#x}")
        yield  # pragma: no cover
