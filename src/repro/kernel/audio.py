"""The two-level audio driver (audio(4)/audio(9)).

Faithful to the structure §2.1.1 describes: one **hardware-independent
high-level driver** per device node ("handling the communications with
user-level processes, inserting silence if the internal ring-buffer runs
out of data") and a **low-level driver** per piece of hardware.  The
high-level driver invokes the low-level driver's ``trigger_output`` exactly
once, when the first block is ready; after that the low level is expected
to drive itself from its completion interrupt — "cutting out the
middleman".  That contract is what makes a pseudo device awkward (§3.3)
and is preserved here deliberately.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.audio.encodings import decode_samples
from repro.audio.params import AudioParams
from repro.kernel.devices import CharDevice, DeviceError
from repro.sim.resources import Signal

# ioctl numbers (values arbitrary, names from audio(4))
AUDIO_SETINFO = 0xA001
AUDIO_GETINFO = 0xA002
AUDIO_DRAIN = 0xA003
AUDIO_FLUSH = 0xA004


class LowLevelAudioDriver:
    """audio(9): what a hardware-specific driver must provide."""

    def set_params(self, params: AudioParams) -> None:
        pass

    def trigger_output(self, device: "AudioDevice") -> None:
        """Called ONCE when the first block is ready to play."""
        raise NotImplementedError

    def halt_output(self) -> None:
        pass


class AudioDevice(CharDevice):
    """The hardware-independent high-level driver for one device node.

    Owns the ring buffer and flow control: writers block at ``hiwat`` and
    wake when the level drains to ``lowat``; the low level pulls blocks via
    :meth:`consume_block`, which hands out silence when the ring underruns.
    """

    #: consecutive silence blocks before output halts (prevents a stopped
    #: application from playing silence forever)
    MAX_SILENT_BLOCKS = 2

    def __init__(
        self,
        machine,
        lowlevel: LowLevelAudioDriver,
        block_seconds: float = 0.065,
        ring_blocks: int = 8,
        name: str = "audio0",
        telemetry=None,
    ):
        self.machine = machine
        self.lowlevel = lowlevel
        self.block_seconds = block_seconds
        self.ring_blocks = ring_blocks
        self.name = name
        if telemetry is None:
            # imported lazily: repro.metrics pulls in the kernel (vmstat)
            from repro.metrics.telemetry import get_telemetry
            telemetry = get_telemetry()
        self.telemetry = telemetry
        label = f"{machine.name}/{name}"
        self._track = label
        self._c_underruns = telemetry.counter(f"audio.underruns[{label}]")
        self._c_hiwat = telemetry.counter(f"audio.hiwat_blocks[{label}]")
        self.params = AudioParams()
        self._chunks: deque[bytes] = deque()
        self._level = 0
        self._space = Signal(f"{name}/space")
        self._data = Signal(f"{name}/data")
        self._drained = Signal(f"{name}/drained")
        self.started = False
        self._silent_run = 0
        self._close_requested = False
        # stats
        self.underruns = 0
        self.silence_bytes = 0
        self.bytes_written = 0
        self._recompute_sizes()

    # -- geometry ----------------------------------------------------------------

    def _recompute_sizes(self) -> None:
        nbytes = self.params.bytes_for(self.block_seconds)
        frame = self.params.frame_bytes
        self.blocksize = max(frame, (nbytes // frame) * frame)
        self.hiwat = self.ring_blocks * self.blocksize
        self.lowat = self.hiwat // 2

    @property
    def level(self) -> int:
        """Bytes currently buffered."""
        return self._level

    # -- device entry points ------------------------------------------------------

    def write(self, handle, data: bytes):
        """Block-at-hiwat write, exactly like audio(4) output."""
        self._close_requested = False
        offset = 0
        total = len(data)
        while offset < total:
            if self._level >= self.hiwat:
                # high-water: the writer blocks until the ring drains
                self._c_hiwat.inc()
                self.telemetry.tracer.instant(
                    "buffer.hiwat", track=self._track, level=self._level
                )
            while self._level >= self.hiwat:
                yield self._space.wait()
            room = self.hiwat - self._level
            take = min(room, total - offset)
            piece = data[offset : offset + take]
            # accumulate views, join once per block in _pop: ``bytes`` and
            # read-only memoryviews (the zero-copy packet payloads) are
            # immutable, so the ring can hold them without a defensive
            # copy; anything writable is snapshotted as before
            if not isinstance(piece, bytes) and not (
                isinstance(piece, memoryview) and piece.readonly
            ):
                piece = bytes(piece)
            self._chunks.append(piece)
            self._level += take
            offset += take
            self.bytes_written += take
            self._data.fire()
            if not self.started and self._level >= self.blocksize:
                self.started = True
                self._silent_run = 0
                self.lowlevel.trigger_output(self)
        return total

    def ioctl(self, handle, cmd: int, arg=None):
        if cmd == AUDIO_SETINFO:
            if not isinstance(arg, AudioParams):
                raise DeviceError("AUDIO_SETINFO needs AudioParams")
            self.params = arg
            self._recompute_sizes()
            self.lowlevel.set_params(arg)
            self._on_setinfo(arg)
            return None
        if cmd == AUDIO_GETINFO:
            return {
                "params": self.params,
                "blocksize": self.blocksize,
                "hiwat": self.hiwat,
                "lowat": self.lowat,
                "level": self._level,
            }
        if cmd == AUDIO_DRAIN:
            while self._level > 0:
                yield self._drained.wait()
            return None
        if cmd == AUDIO_FLUSH:
            self._chunks.clear()
            self._level = 0
            self._space.fire()
            self._drained.fire()
            return None
        raise DeviceError(f"{self.name}: unsupported ioctl {cmd:#x}")
        yield  # pragma: no cover

    def _on_setinfo(self, params: AudioParams) -> None:
        """Hook for the VAD: configuration must reach the master side."""

    # -- low-level driver interface -----------------------------------------------

    def consume_block(self) -> Optional[Tuple[bytes, bool]]:
        """Pop one block for the hardware; silence on underrun.

        Returns ``(data, is_silence)``, or ``None`` to tell the low level
        to stop its transfer loop (closed device, or sustained underrun).
        The silence insertion on a dry ring is the high-level driver's
        documented job (§2.1.1).
        """
        if self._level > 0:
            # a trailing partial block is played as-is (shorter transfer)
            # rather than padded, so one PCM byte in == one PCM byte out
            prev = self._level
            data = self._pop(min(self.blocksize, self._level))
            self._silent_run = 0
            self._maybe_wake(prev)
            return data, False
        if self._close_requested or self._silent_run >= self.MAX_SILENT_BLOCKS:
            self.started = False
            self._silent_run = 0
            return None
        if self._silent_run == 0:
            self.underruns += 1
            self._c_underruns.inc()
            self.telemetry.tracer.instant(
                "buffer.underrun", track=self._track
            )
        self.silence_bytes += self.blocksize
        self._silent_run += 1
        return bytes(self.blocksize), True

    def close(self, handle) -> None:
        """Stop inserting silence once the buffered audio finishes.

        If a sub-blocksize tail never reached the start threshold, kick
        the low level now so it plays out rather than sticking in the
        ring forever.
        """
        self._close_requested = True
        if self._level > 0 and not self.started:
            self.started = True
            self.lowlevel.trigger_output(self)

    def take_block(self) -> Optional[bytes]:
        """Pop one block only if real data is available (no silence).

        Used by the VAD, which must pass through exactly what was written
        — a pseudo device has no reason to manufacture silence.
        """
        if self._level == 0:
            return None
        prev = self._level
        data = self._pop(min(self.blocksize, self._level))
        self._maybe_wake(prev)
        return data

    def wait_for_data(self):
        """Waitable for 'ring became non-empty'."""
        return self._data.wait()

    def _pop(self, nbytes: int) -> bytes:
        parts = []
        need = nbytes
        while need > 0 and self._chunks:
            chunk = self._chunks.popleft()
            if len(chunk) <= need:
                parts.append(chunk)
                need -= len(chunk)
            else:
                parts.append(chunk[:need])
                self._chunks.appendleft(chunk[need:])
                need = 0
        data = b"".join(parts)
        self._level -= len(data)
        return data

    def _maybe_wake(self, prev_level: int = -1) -> None:
        if self._level <= self.lowat:
            if prev_level > self.lowat:
                # low-water crossing: writers are about to wake
                self.telemetry.tracer.instant(
                    "buffer.lowat", track=self._track, level=self._level
                )
            self._space.fire()
        if self._level == 0:
            self._drained.fire()


class SpeakerSink:
    """Records everything the DAC emits, for offline verification.

    ``waveform()`` reconstructs the analogue output (silence insertions
    included) so tests can compare what an application wrote against what
    actually came out of the cone — skips, gaps, phase and all.
    """

    def __init__(self, name: str = "speaker"):
        self.name = name
        self.records: List[Tuple[float, bytes, bool, AudioParams]] = []
        self.silence_events = 0
        self.first_audio_time: Optional[float] = None

    def record(
        self, time: float, data: bytes, is_silence: bool, params: AudioParams
    ) -> None:
        self.records.append((time, data, is_silence, params))
        if is_silence:
            self.silence_events += 1
        elif self.first_audio_time is None:
            self.first_audio_time = time

    @property
    def played_seconds(self) -> float:
        return sum(p.duration_of(len(d)) for _, d, _, p in self.records)

    @property
    def audio_seconds(self) -> float:
        return sum(
            p.duration_of(len(d)) for _, d, s, p in self.records if not s
        )

    @property
    def silence_seconds(self) -> float:
        return self.played_seconds - self.audio_seconds

    def waveform(self) -> np.ndarray:
        """Mono float waveform of everything played, in play order."""
        pieces = []
        for _, data, is_silence, params in self.records:
            if is_silence:
                pieces.append(np.zeros(params.frames_of(len(data))))
            else:
                pieces.append(decode_samples(data, params).mean(axis=1))
        if not pieces:
            return np.zeros(0)
        return np.concatenate(pieces)

    def play_times(self) -> List[float]:
        """Start time of each non-silence block (for sync measurements)."""
        return [t for t, _, s, _ in self.records if not s]

    def time_at_bytes(self, offset: int) -> Optional[float]:
        """The DAC time at which the ``offset``-th PCM byte was emitted.

        Counts only non-silence bytes, so the mapping from stream bytes to
        emission times survives underruns.  Returns None for bytes never
        played.
        """
        seen = 0
        for time, data, is_silence, params in self.records:
            if is_silence:
                continue
            if seen + len(data) > offset:
                return time + params.duration_of(offset - seen)
            seen += len(data)
        return None


class HardwareAudioDriver(LowLevelAudioDriver):
    """A simulated sound card: DMA at exactly the sample rate.

    This is the "inherent rate limiting" of §3.1: one block leaves the ring
    every ``blocksize / bytes_per_second`` seconds, no faster.  Each
    completed transfer costs one interrupt service on the host CPU.
    """

    def __init__(self, machine, sink: Optional[SpeakerSink] = None,
                 drift_ppm: float = 0.0):
        self.machine = machine
        self.sink = sink or SpeakerSink()
        #: crystal tolerance: the DAC consumes samples at
        #: nominal_rate / (1 + drift_ppm*1e-6).  §3.2's "slight phase
        #: differences ... when two ESs have different hardware
        #: configurations" in one number (audio crystals are ±50-100 ppm).
        self.drift_ppm = drift_ppm
        self._running = False
        self._halt_requested = False
        self.blocks_played = 0

    def set_params(self, params: AudioParams) -> None:
        pass  # geometry is recomputed by the high-level driver

    def trigger_output(self, device: AudioDevice) -> None:
        # a restart while the tick chain is still winding down just
        # cancels the pending halt
        self._halt_requested = False
        if self._running:
            return
        self._running = True
        self._tick(device)

    def halt_output(self) -> None:
        self._halt_requested = True

    def _tick(self, device: AudioDevice) -> None:
        if self._halt_requested:
            self._running = False
            return
        block = device.consume_block()
        if block is None:
            self._running = False
            return
        data, is_silence = block
        self.sink.record(self.machine.sim.now, data, is_silence, device.params)
        self.blocks_played += 1
        # completion interrupt: charge ISR cycles in interrupt context
        self.machine.cpu.charge(self.machine.intr_cycles, domain="intr")
        duration = device.params.duration_of(len(data))
        duration *= 1.0 + self.drift_ppm * 1e-6
        self.machine.sim.schedule(duration, self._tick, device)
