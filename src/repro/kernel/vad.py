"""The Virtual Audio Device: a master/slave pseudo-device pair (§2.1).

The slave (``/dev/vads``) is a complete ``audio(4)`` device — applications
configure it with ioctls and write PCM to it, none the wiser that no
hardware exists.  Everything written to the slave, *including the ioctl
configuration*, surfaces on the master (``/dev/vadm``) as a stream of
:class:`VadRecord`\\ s, so "the application accessing vadm can always decode
the audio stream correctly" (§2.1.1).

Because there is no DMA engine, the high-level driver's trigger-once
contract breaks (§3.3).  Both of the paper's workarounds are implemented:

* ``strategy="kthread"`` — a kernel thread pulls blocks from the ring and
  feeds the master queue (or a kernel-resident consumer), standing in for
  the hardware interrupt;
* ``strategy="modified"`` — the "modified independent audio driver": the
  write path hands blocks straight through to the master queue.

Neither imposes any rate limit: data moves as fast as it is written and
read — the property that makes the user-level rate limiter necessary
(§3.1).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.audio.params import AudioParams
from repro.kernel.audio import AUDIO_SETINFO, AudioDevice, LowLevelAudioDriver
from repro.kernel.devices import CharDevice
from repro.sim.process import Process
from repro.sim.resources import Queue, QueueClosed


class VadRecord:
    """One item read from the master side: audio data or configuration."""

    __slots__ = ("kind", "params", "payload", "seq")

    def __init__(self, kind: str, params=None, payload: bytes = b"", seq=0):
        self.kind = kind
        self.params = params
        self.payload = payload
        self.seq = seq

    @classmethod
    def config(cls, params: AudioParams, seq: int = 0) -> "VadRecord":
        return cls("config", params=params, seq=seq)

    @classmethod
    def data(cls, payload: bytes, seq: int = 0) -> "VadRecord":
        return cls("data", payload=payload, seq=seq)

    @property
    def copy_bytes(self) -> int:
        """Bytes copied out to userland when this record is read."""
        return len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind == "config":
            return f"<VadRecord config {self.params.describe()}>"
        return f"<VadRecord data {len(self.payload)}B seq={self.seq}>"


class _VadLowLevel(LowLevelAudioDriver):
    """The low-level half with nothing behind it (strategy: kthread)."""

    def __init__(self, pair: "VadPair"):
        self.pair = pair

    def trigger_output(self, device: AudioDevice) -> None:
        # The independent driver calls this exactly once.  With hardware
        # this would start a self-sustaining DMA+interrupt loop; here we
        # start the pump kernel thread instead (§3.3).
        self.pair._ensure_kthread()

    def halt_output(self) -> None:
        pass


class VadSlaveDevice(AudioDevice):
    """``/dev/vads``: looks exactly like an audio device to applications."""

    def __init__(self, pair: "VadPair", **kwargs):
        self.pair = pair
        super().__init__(
            pair.machine, _VadLowLevel(pair), name="vads", **kwargs
        )
        self._pending = b""  # modified-strategy partial block

    def write(self, handle, data: bytes):
        if self.pair.strategy == "kthread":
            count = yield from super().write(handle, data)
            return count
        # "modified independent driver": the write path itself moves
        # blocks to the master, no interrupt machinery involved.
        self.bytes_written += len(data)
        buffered = self._pending + bytes(data)
        offset = 0
        while len(buffered) - offset >= self.blocksize:
            block = buffered[offset : offset + self.blocksize]
            offset += self.blocksize
            yield from self.pair._emit(self.pair._make_data(block))
        self._pending = buffered[offset:]
        return len(data)

    def ioctl(self, handle, cmd: int, arg=None):
        if cmd == AUDIO_SETINFO:
            # flush buffered data first so records stay in write order and
            # old blocks are still described by the old configuration
            while self._level > 0 or self.pair._in_flight > 0:
                yield self._drained.wait()
            if self._pending:
                yield from self.pair._emit(self.pair._make_data(self._pending))
                self._pending = b""
            result = yield from super().ioctl(handle, cmd, arg)
            yield from self.pair._emit(VadRecord.config(arg))
            return result
        result = yield from super().ioctl(handle, cmd, arg)
        return result

    def close(self, handle) -> None:
        super().close(handle)
        if self._pending:
            # last partial block of a modified-strategy stream
            if self.pair.master_queue.put_nowait(
                self.pair._make_data(self._pending)
            ):
                self._pending = b""


class VadMasterDevice(CharDevice):
    """``/dev/vadm``: yields :class:`VadRecord` objects to its reader.

    Deviation from the byte-stream a real character device would give:
    reads return framed records directly.  The framing a real master
    device would need (length-prefixed record headers) is pure
    serialisation noise for the experiments, so it is elided.
    """

    def __init__(self, pair: "VadPair"):
        self.pair = pair

    def read(self, handle, nbytes: int):
        record = yield self.pair.master_queue.get()
        return record


class VadPair:
    """One virtual audio device: slave + master + the plumbing between.

    Parameters
    ----------
    strategy:
        ``"kthread"`` or ``"modified"`` (§3.3's two workarounds).
    kernel_consumer:
        optional generator function ``f(record)``; when given, the kernel
        thread feeds records to it *inside the kernel* instead of the
        master queue — the paper's preliminary in-kernel streaming design.
    queue_blocks:
        master queue bound; a slow master reader eventually blocks the
        writing application (flow control, not unbounded kernel memory).
    """

    #: cycles the pump charges per block moved (buffer bookkeeping)
    pump_cycles = 4000.0

    def __init__(
        self,
        machine,
        strategy: str = "kthread",
        queue_blocks: int = 16,
        kernel_consumer: Optional[Callable[[VadRecord], Generator]] = None,
        block_seconds: float = 0.065,
        ring_blocks: int = 8,
        slave_path: str = "/dev/vads",
        master_path: str = "/dev/vadm",
    ):
        if strategy not in ("kthread", "modified"):
            raise ValueError(f"unknown VAD strategy: {strategy}")
        if strategy == "modified" and kernel_consumer is not None:
            raise ValueError("kernel_consumer requires the kthread strategy")
        self.machine = machine
        self.strategy = strategy
        self.kernel_consumer = kernel_consumer
        self.master_queue = Queue(capacity=queue_blocks, name="vadm-queue")
        self.slave = VadSlaveDevice(
            self, block_seconds=block_seconds, ring_blocks=ring_blocks
        )
        self.master = VadMasterDevice(self)
        self._kthread: Optional[Process] = None
        self._seq = 0
        self._in_flight = 0
        self.blocks_pumped = 0
        machine.register_device(slave_path, self.slave)
        machine.register_device(master_path, self.master)

    def _make_data(self, payload: bytes) -> VadRecord:
        self._seq += 1
        self.blocks_pumped += 1
        return VadRecord.data(payload, seq=self._seq)

    def _emit(self, record: VadRecord):
        """Generator: route a record to the kernel consumer or the master."""
        if self.kernel_consumer is not None:
            yield from self.kernel_consumer(record)
        else:
            yield self.master_queue.put(record)

    def _ensure_kthread(self) -> None:
        if self._kthread is not None and self._kthread.alive:
            return
        self._kthread = self.machine.spawn(
            self._pump(), name=f"{self.machine.name}/vad-kthread"
        )

    def _pump(self):
        """The kernel thread that replaces the hardware interrupt."""
        slave = self.slave
        machine = self.machine
        while True:
            block = slave.take_block()
            if block is None:
                yield slave.wait_for_data()
                continue
            self._in_flight += 1
            try:
                yield machine.cpu.run(self.pump_cycles, domain="sys")
                record = self._make_data(block)
                try:
                    yield from self._emit(record)
                except QueueClosed:
                    return
            finally:
                self._in_flight -= 1
                if self._in_flight == 0 and slave.level == 0:
                    slave._drained.fire()

    def close(self) -> None:
        """Tear the pair down; pending reads see QueueClosed."""
        self.master_queue.close()
        if self._kthread is not None:
            self._kthread.kill()
