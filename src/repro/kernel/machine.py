"""A simulated host: CPU + devices + file descriptors + processes.

Syscall wrappers charge system-domain CPU (trap overhead plus a per-byte
copyin/copyout cost) before delegating to the driver, so the context-switch
and CPU-utilisation figures (Figures 4 and 5) emerge from the same code
paths the paper measured rather than from hand-placed constants.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.kernel.devices import CharDevice, DeviceError
from repro.net.nic import Nic
from repro.net.segment import EthernetSegment
from repro.net.stack import NetworkStack
from repro.sim.core import Simulator
from repro.sim.cpu import CPU
from repro.sim.process import Process, Sleep


class _OpenFile:
    __slots__ = ("device", "handle", "path")

    def __init__(self, device: CharDevice, handle: Any, path: str):
        self.device = device
        self.handle = handle
        self.path = path


class Machine:
    """One computer in the simulation.

    Parameters
    ----------
    cpu_freq_hz:
        233e6 models the Neoware EON 4000's Geode (§3.4).
    syscall_cycles / copy_cycles_per_byte / intr_cycles:
        kernel cost model; defaults are plausible for the era and mostly
        matter in ratio form.
    """

    #: cycles for trap + dispatch of one syscall
    syscall_cycles = 3000.0
    #: cycles per byte of copyin/copyout
    copy_cycles_per_byte = 0.5
    #: cycles charged per device interrupt service
    intr_cycles = 2500.0

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_freq_hz: float = 500e6,
        quantum: float = 0.010,
        switch_cost: float = 20e-6,
    ):
        self.sim = sim
        self.name = name
        self.cpu = CPU(
            sim, freq_hz=cpu_freq_hz, quantum=quantum,
            switch_cost=switch_cost, name=f"{name}/cpu0",
        )
        self.devices: Dict[str, CharDevice] = {}
        self._fds: Dict[int, _OpenFile] = {}
        self._next_fd = 3
        self.net: Optional[NetworkStack] = None
        self.mgmt_net: Optional[NetworkStack] = None
        self.nvram: Dict[str, Any] = {}
        self.processes: list[Process] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.name}>"

    # -- configuration -------------------------------------------------------------

    def register_device(self, path: str, device: CharDevice) -> None:
        """Add a /dev entry."""
        self.devices[path] = device

    def attach_network(
        self, segment: EthernetSegment, ip: str, vlan: int = 1
    ) -> NetworkStack:
        self.net = NetworkStack(self.sim, Nic(segment, ip, vlan=vlan,
                                              name=f"{self.name}/nic0"))
        return self.net

    def attach_mgmt_network(
        self, segment: EthernetSegment, ip: str, vlan: int = 1
    ) -> NetworkStack:
        """Attach a second NIC on an out-of-band management segment.

        Discovery and control-plane traffic prefers this stack (see
        :attr:`control_stack`) so fleet churn never contends with the
        audio LAN for wire time.
        """
        self.mgmt_net = NetworkStack(self.sim, Nic(segment, ip, vlan=vlan,
                                                   name=f"{self.name}/nic1"))
        return self.mgmt_net

    @property
    def control_stack(self) -> Optional[NetworkStack]:
        """The stack control-plane traffic should use: the management
        NIC when one is attached, else the primary NIC."""
        return self.mgmt_net if self.mgmt_net is not None else self.net

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a user process on this machine."""
        proc = Process.spawn(self.sim, gen, name or f"{self.name}/proc")
        self.processes.append(proc)
        return proc

    def start_housekeeping(
        self, wakes_per_second: float = 2.0, cycles: float = 40_000.0
    ) -> Process:
        """Periodic kernel housekeeping (timers, page daemon, etc.).

        Produces the small baseline context-switch rate an unloaded
        machine shows — the "mean 4.2" line of Figure 5.
        """

        def daemon():
            period = 1.0 / wakes_per_second
            while True:
                yield Sleep(period)
                yield self.cpu.run(cycles, domain="sys", owner="housekeeping")

        return self.spawn(daemon(), name=f"{self.name}/housekeeping")

    # -- syscalls (generator functions; call with `yield from`) ----------------------

    def sys_open(self, path: str, flags: str = "rw"):
        """Open a device node; returns an fd."""
        yield self.cpu.run(self.syscall_cycles, domain="sys")
        device = self.devices.get(path)
        if device is None:
            raise DeviceError(f"{self.name}: no such device {path}")
        handle = device.open(self, flags)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(device, handle, path)
        return fd

    def open_direct(self, path: str, flags: str = "rw") -> int:
        """Install an fd for ``path`` with no syscall charge.

        Used when cloning a cohort member into a per-object speaker
        mid-stream: the member's per-object twin paid ``sys_open`` once
        at tune-in, long before the spill, so re-charging the trap here
        would skew the clone's timeline away from bit-identity.
        """
        device = self.devices.get(path)
        if device is None:
            raise DeviceError(f"{self.name}: no such device {path}")
        handle = device.open(self, flags)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(device, handle, path)
        return fd

    def sys_write(self, fd: int, data: bytes):
        """Write to an fd; blocks as the driver dictates; returns count."""
        entry = self._lookup(fd)
        cycles = self.syscall_cycles + self.copy_cycles_per_byte * len(data)
        yield self.cpu.run(cycles, domain="sys")
        result = yield from entry.device.write(entry.handle, data)
        return result

    def sys_read(self, fd: int, nbytes: int):
        """Read from an fd; returns bytes (or a device-specific record)."""
        entry = self._lookup(fd)
        yield self.cpu.run(self.syscall_cycles, domain="sys")
        data = yield from entry.device.read(entry.handle, nbytes)
        if isinstance(data, (bytes, bytearray)):
            nbytes_out = len(data)
        else:
            nbytes_out = getattr(data, "copy_bytes", 0)
        copy = self.copy_cycles_per_byte * nbytes_out
        if copy:
            yield self.cpu.run(copy, domain="sys")
        return data

    def sys_ioctl(self, fd: int, cmd: int, arg: Any = None):
        """Device control; returns the command's result."""
        entry = self._lookup(fd)
        yield self.cpu.run(self.syscall_cycles, domain="sys")
        result = yield from entry.device.ioctl(entry.handle, cmd, arg)
        return result

    def sys_close(self, fd: int):
        yield self.cpu.run(self.syscall_cycles, domain="sys")
        entry = self._fds.pop(fd, None)
        if entry is not None:
            entry.device.close(entry.handle)

    def _lookup(self, fd: int) -> _OpenFile:
        entry = self._fds.get(fd)
        if entry is None:
            raise DeviceError(f"{self.name}: bad file descriptor {fd}")
        return entry

    # -- interrupt context -------------------------------------------------------------

    def interrupt_cost(self):
        """Waitable: CPU cost of one interrupt service, attributed to a
        dedicated interrupt context for switch accounting."""
        return self.cpu.run(self.intr_cycles, domain="intr", owner="intr")
