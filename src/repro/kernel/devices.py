"""Character-device interface for the simulated kernel.

Drivers implement the subset of the cdevsw entry points the audio stack
needs.  ``read``/``write``/``ioctl`` are generator functions (they may
block the calling process); ``open``/``close`` are plain calls.
"""

from __future__ import annotations

from typing import Any


class DeviceError(Exception):
    """EIO and friends."""


class CharDevice:
    """Base character device.  Subclasses override what they support."""

    def open(self, machine, flags: str = "rw") -> Any:
        """Return a per-open handle (any object); called on sys_open."""
        return self

    def close(self, handle: Any) -> None:
        pass

    def write(self, handle: Any, data: bytes):
        """Generator: write ``data``; returns bytes accepted."""
        raise DeviceError("device is not writable")
        yield  # pragma: no cover

    def read(self, handle: Any, nbytes: int):
        """Generator: returns up to ``nbytes`` of data."""
        raise DeviceError("device is not readable")
        yield  # pragma: no cover

    def ioctl(self, handle: Any, cmd: int, arg: Any = None):
        """Generator: device control; returns a command-specific value."""
        raise DeviceError(f"unsupported ioctl {cmd:#x}")
        yield  # pragma: no cover


class NullDevice(CharDevice):
    """/dev/null: accepts everything, returns nothing."""

    def write(self, handle, data):
        return len(data)
        yield  # pragma: no cover

    def read(self, handle, nbytes):
        return b""
        yield  # pragma: no cover
