"""A simulated OpenBSD-style kernel, enough to host the VAD.

The paper's central artifact is a kernel modification: the virtual audio
device (§2.1).  To reproduce its behaviour — including the awkward
interaction with the hardware-independent audio driver (§3.3) — this
package models the relevant kernel structures:

* :class:`~repro.kernel.machine.Machine` — a host: CPU, device table,
  file descriptors, processes, optional NIC.
* syscalls (``open``/``read``/``write``/``ioctl``/``close``) that charge
  system-domain CPU time and block exactly where a real kernel would.
* the **hardware-independent audio driver** (:mod:`repro.kernel.audio`):
  ring buffer, hiwat/lowat flow control, silence insertion on underrun,
  and the audio(9) contract where the low-level driver is triggered once
  and then drives itself from its interrupt routine.
* a **hardware audio driver** (DMA consumption at the sample rate — the
  "inherent rate limiting" of real hardware, §3.1) and the **VAD**
  (:mod:`repro.kernel.vad`): a low-level driver with no hardware behind
  it, available in both of the paper's workaround flavours (modified
  independent driver, or a kernel thread that fires the interrupt
  routine).
"""

from repro.kernel.machine import Machine
from repro.kernel.devices import CharDevice, DeviceError
from repro.kernel.audio import (
    AUDIO_DRAIN,
    AUDIO_FLUSH,
    AUDIO_GETINFO,
    AUDIO_SETINFO,
    AudioDevice,
    HardwareAudioDriver,
    SpeakerSink,
)
from repro.kernel.mic import MicDevice
from repro.kernel.vad import VadPair, VadRecord

__all__ = [
    "Machine",
    "CharDevice",
    "DeviceError",
    "AudioDevice",
    "HardwareAudioDriver",
    "SpeakerSink",
    "AUDIO_SETINFO",
    "AUDIO_GETINFO",
    "AUDIO_DRAIN",
    "AUDIO_FLUSH",
    "MicDevice",
    "VadPair",
    "VadRecord",
]
