"""The local user interface: a remote control per speaker (§5.3).

"This implies the ability to receive input from the user (e.g., some
remote control device)."  The remote cycles through whatever the catalog
currently advertises (§4.3's whole point: "the user can see which
programs are being multicast, rather than having to switch channels to
monitor the audio transmissions"), and remembers the last selection in
NVRAM so a rebooted speaker returns to it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.protocol import AnnounceEntry
from repro.mgmt.catalog import CatalogListener

NVRAM_CHANNEL_KEY = "last_channel"


class RemoteControl:
    """Channel up/down buttons wired to a speaker and a catalog view."""

    def __init__(self, speaker, catalog: CatalogListener,
                 nvram=None):
        self.speaker = speaker
        self.catalog = catalog
        self.nvram = nvram
        self.presses = 0

    def _sorted_channels(self) -> List[AnnounceEntry]:
        return sorted(self.catalog.live_channels(),
                      key=lambda e: e.channel_id)

    def current_index(self) -> Optional[int]:
        tuned = (self.speaker.group_ip, self.speaker.port)
        for i, entry in enumerate(self._sorted_channels()):
            if (entry.group_ip, entry.port) == tuned:
                return i
        return None

    def channel_up(self) -> Optional[AnnounceEntry]:
        return self._step(+1)

    def channel_down(self) -> Optional[AnnounceEntry]:
        return self._step(-1)

    def select(self, name: str) -> Optional[AnnounceEntry]:
        """Direct selection by advertised name."""
        entry = self.catalog.find(name)
        if entry is not None:
            self._tune(entry)
        return entry

    def _step(self, direction: int) -> Optional[AnnounceEntry]:
        channels = self._sorted_channels()
        if not channels:
            return None
        index = self.current_index()
        if index is None:
            entry = channels[0]
        else:
            entry = channels[(index + direction) % len(channels)]
        self._tune(entry)
        return entry

    def _tune(self, entry: AnnounceEntry) -> None:
        self.presses += 1
        self.speaker.retune(entry.group_ip, entry.port)
        if self.nvram is not None:
            self.nvram.store(
                NVRAM_CHANNEL_KEY,
                f"{entry.group_ip}:{entry.port}".encode(),
            )

    def restore_last_channel(self) -> bool:
        """After a reboot: return to the channel stored in NVRAM."""
        if self.nvram is None:
            return False
        stored = self.nvram.load(NVRAM_CHANNEL_KEY)
        if stored is None:
            return False
        group_ip, port = stored.decode().split(":")
        self.speaker.retune(group_ip, int(port))
        return True
