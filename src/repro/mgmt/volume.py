"""Automatic volume control from ambient noise (§5.2).

"One example will be to set the volume level automatically depending on
the ambient noise level and the type of audio stream.  So for background
music the ES would lower the volume if the area is quiet while ensuring
that audio segments recorded at different volume levels produce the same
sound levels.  Alternatively, if an announcement is being made, then the
volume should be increased if there is a lot of background noise."

"This input allows the ES to compare its own output against the ambient
levels": the controller only sees the microphone; it estimates the
ambient by subtracting its own (known) output contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.audio.room import Room
from repro.sim.process import Process, Sleep


@dataclass
class VolumePolicy:
    """Targets per stream type."""

    #: music: output level ramps between these as ambient goes 0 -> loud
    music_quiet_level: float = 0.08
    music_noisy_level: float = 0.35
    #: ambient level considered "loud" for the music ramp
    ambient_ref: float = 0.4
    #: announcements: keep output this factor above the ambient level
    announce_snr_factor: float = 2.5
    announce_min_level: float = 0.25
    max_gain: float = 8.0
    #: slew limit per adjustment (fraction of current gain)
    slew: float = 0.5


class AutoVolumeController:
    """Periodic gain adjustment from the (simulated) microphone."""

    def __init__(
        self,
        speaker,
        room: Room,
        mode: str = "music",
        interval: float = 0.5,
        policy: VolumePolicy | None = None,
        mic_path: str | None = None,
    ):
        if mode not in ("music", "announcement"):
            raise ValueError(f"unknown mode: {mode}")
        self.speaker = speaker
        self.room = room
        self.mode = mode
        self.interval = interval
        self.policy = policy or VolumePolicy()
        #: when set, the controller reads the actual capture device
        #: (:class:`repro.kernel.mic.MicDevice`) instead of querying the
        #: room model directly — the §5.2 mic-input path
        self.mic_path = mic_path
        self.adjustments = 0
        #: (time, ambient estimate, gain) history for the experiments
        self.history: List[Tuple[float, float, float]] = []

    def start(self) -> Process:
        return self.speaker.machine.spawn(
            self._run(), name="auto-volume"
        )

    def estimate_ambient(self) -> float:
        """Mic level minus our own contribution (power domain)."""
        mic = self.room.mic_rms(self.speaker.machine.sim.now)
        own = self.room.coupling * self.speaker.last_output_rms * self.speaker_active()
        return max(0.0, mic**2 - own**2) ** 0.5

    def speaker_active(self) -> float:
        return 1.0 if self.speaker.stats.played else 0.0

    def target_level(self, ambient: float) -> float:
        p = self.policy
        if self.mode == "music":
            # quiet room -> quiet music; noisy room -> louder, capped
            ramp = min(1.0, ambient / p.ambient_ref)
            return p.music_quiet_level + ramp * (
                p.music_noisy_level - p.music_quiet_level
            )
        return max(p.announce_min_level, ambient * p.announce_snr_factor)

    def _mic_ambient(self, fd):
        """Generator: read the capture device, estimate the ambient."""
        import numpy as np

        from repro.audio.encodings import decode_samples
        from repro.kernel.audio import AUDIO_GETINFO

        machine = self.speaker.machine
        info = yield from machine.sys_ioctl(fd, AUDIO_GETINFO)
        params = info["params"]
        data = yield from machine.sys_read(fd, params.bytes_for(0.1))
        samples = decode_samples(data, params)
        mic_rms = float(np.sqrt(np.mean(np.square(samples))))
        own = self.room.coupling * self.speaker.last_output_rms \
            * self.speaker_active()
        return max(0.0, mic_rms**2 - own**2) ** 0.5

    def _run(self):
        speaker = self.speaker
        mic_fd = None
        if self.mic_path is not None:
            mic_fd = yield from speaker.machine.sys_open(self.mic_path)
        while True:
            yield Sleep(self.interval)
            if mic_fd is not None:
                ambient = yield from self._mic_ambient(mic_fd)
            else:
                ambient = self.estimate_ambient()
            target = self.target_level(ambient)
            # content loudness before gain: normalise different source
            # levels to the same acoustic output
            content = (
                speaker.last_output_rms / speaker.gain
                if speaker.gain > 0 and speaker.last_output_rms > 0
                else 0.0
            )
            if content > 1e-6:
                desired = min(self.policy.max_gain, target / content)
                step = max(
                    min(desired, speaker.gain * (1 + self.policy.slew)),
                    speaker.gain * (1 - self.policy.slew),
                )
                speaker.gain = step
                self.adjustments += 1
            self.history.append(
                (speaker.machine.sim.now, ambient, speaker.gain)
            )
