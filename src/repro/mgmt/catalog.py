"""The out-of-band channel catalog (§4.3, after StarBurst MFTP).

The announcer multicasts the list of live channels on a dedicated group;
speakers learn what is playable without joining every stream.  The
announcer also implements the MSNIP-flavoured economy measure: a channel
whose listener count (reported out of band by the management layer) is
zero can be suspended "if it notices that there are no listeners".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.channel import ChannelConfig
from repro.core.protocol import (
    AnnounceEntry,
    AnnouncePacket,
    ProtocolError,
    parse_packet,
)
from repro.sim.process import Process, Sleep

CATALOG_GROUP = "239.192.255.1"
CATALOG_PORT = 4999


class CatalogAnnouncer:
    """Producer-side: periodically advertise the live channels."""

    def __init__(self, machine, interval: float = 1.0,
                 group: str = CATALOG_GROUP, port: int = CATALOG_PORT,
                 authenticator=None):
        self.machine = machine
        self.interval = interval
        self.group = group
        self.port = port
        #: §5.1: sign announcements so "fake advertisements from
        #: impostors" fail verification at the speakers
        self.authenticator = authenticator
        self._channels: Dict[int, ChannelConfig] = {}
        self._suspended: set[int] = set()
        self.listener_counts: Dict[int, int] = {}
        self.announcements_sent = 0
        self._seq = 0

    def add_channel(self, channel: ChannelConfig) -> None:
        self._channels[channel.channel_id] = channel

    def remove_channel(self, channel_id: int) -> None:
        self._channels.pop(channel_id, None)

    def suspend(self, channel_id: int) -> None:
        """MSNIP-style: stop advertising a listenerless channel."""
        self._suspended.add(channel_id)

    def resume(self, channel_id: int) -> None:
        self._suspended.discard(channel_id)

    def report_listeners(self, channel_id: int, count: int) -> None:
        """Out-of-band listener census; zero listeners suspends."""
        self.listener_counts[channel_id] = count
        if count == 0:
            self.suspend(channel_id)
        else:
            self.resume(channel_id)

    def live_entries(self) -> List[AnnounceEntry]:
        return [
            AnnounceEntry(
                channel_id=ch.channel_id,
                group_ip=ch.group_ip,
                port=ch.port,
                codec_id=ch.codec_id,
                name=ch.name,
            )
            for ch in self._channels.values()
            if ch.channel_id not in self._suspended
        ]

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="catalog-announcer")

    def _run(self):
        sock = self.machine.net.socket()
        while True:
            self._seq += 1
            packet = AnnouncePacket(
                seq=self._seq, entries=tuple(self.live_entries())
            )
            yield self.machine.cpu.run(5_000, domain="user")
            wire = packet.encode()
            if self.authenticator is not None:
                yield self.machine.cpu.run(
                    self.authenticator.sign_cycles(len(wire)), domain="user"
                )
                wire = self.authenticator.wrap(wire)
            sock.sendto(wire, (self.group, self.port))
            self.announcements_sent += 1
            yield Sleep(self.interval)


@dataclass
class CatalogEntryState:
    entry: AnnounceEntry
    last_seen: float


class CatalogListener:
    """Speaker-side: track the advertised channels; entries expire."""

    def __init__(self, machine, expiry: float = 5.0,
                 group: str = CATALOG_GROUP, port: int = CATALOG_PORT,
                 trusted_names: Optional[set] = None, verifier=None):
        self.machine = machine
        self.expiry = expiry
        self.group = group
        self.port = port
        #: optional allow-list against impostor advertisements (§5.1)
        self.trusted_names = trusted_names
        #: optional signature verification (the proper §5.1 answer)
        self.verifier = verifier
        self.channels: Dict[int, CatalogEntryState] = {}
        self.rejected = 0

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="catalog-listener")

    def live_channels(self) -> List[AnnounceEntry]:
        now = self.machine.sim.now
        return [
            st.entry
            for st in self.channels.values()
            if now - st.last_seen <= self.expiry
        ]

    def find(self, name: str) -> Optional[AnnounceEntry]:
        for entry in self.live_channels():
            if entry.name == name:
                return entry
        return None

    def _run(self):
        sock = self.machine.net.socket(self.port)
        sock.join_multicast(self.group)
        while True:
            msg = yield sock.recv()
            wire = msg.payload
            if self.verifier is not None:
                yield self.machine.cpu.run(
                    self.verifier.verify_cycles(len(wire)), domain="user"
                )
                wire = self.verifier.unwrap(wire)
                if wire is None:
                    self.rejected += 1
                    continue
            try:
                packet = parse_packet(wire)
            except ProtocolError:
                continue
            if not isinstance(packet, AnnouncePacket):
                continue
            now = self.machine.sim.now
            for entry in packet.entries:
                if (
                    self.trusted_names is not None
                    and entry.name not in self.trusted_names
                ):
                    self.rejected += 1
                    continue
                self.channels[entry.channel_id] = CatalogEntryState(
                    entry=entry, last_seen=now
                )
