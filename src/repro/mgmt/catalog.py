"""The out-of-band channel catalog (§4.3, after StarBurst MFTP).

The announcer multicasts the list of live channels on a dedicated group;
speakers learn what is playable without joining every stream.  The
announcer also implements the MSNIP-flavoured economy measure: a channel
whose listener count (reported out of band by the management layer) is
zero can be suspended "if it notices that there are no listeners".

Catalog entries ride the same lease machinery as entity discovery
(:mod:`repro.mgmt.discovery`): every announcement carries a ``valid_time``
and listeners age entries out when the lease lapses — locally-configured
expiry is only the fallback for pre-lease announcers.  The announcer
probes each channel's talker before advertising it, so a crashed
rebroadcaster's channel stops being advertised immediately and a remote
cycling through the catalog can never tune to a dead channel for longer
than one lease.  Announcements are freshness-checked by serial sequence
number, so a delayed or replayed announcement cannot resurrect entries a
newer one retired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.channel import ChannelConfig
from repro.core.protocol import (
    SEQ_MOD,
    AnnounceEntry,
    AnnouncePacket,
    ProtocolError,
    parse_packet,
    seq_delta,
)
from repro.mgmt.discovery import lease_expired
from repro.sim.process import Process, Sleep

CATALOG_GROUP = "239.192.255.1"
CATALOG_PORT = 4999


class CatalogAnnouncer:
    """Producer-side: periodically advertise the live channels.

    ``valid_time`` is the lease stamped into every announcement; it
    defaults to three announcement intervals so two consecutive
    announcements can be lost before listeners age the catalog out.
    ``add_channel`` optionally takes a liveness probe for the channel's
    talker — a channel whose probe fails is withheld from the
    announcement exactly like a suspended one.
    """

    def __init__(self, machine, interval: float = 1.0,
                 group: str = CATALOG_GROUP, port: int = CATALOG_PORT,
                 valid_time: Optional[float] = None,
                 authenticator=None):
        self.machine = machine
        self.interval = interval
        self.group = group
        self.port = port
        self.valid_time = (
            valid_time if valid_time is not None else 3.0 * interval
        )
        #: §5.1: sign announcements so "fake advertisements from
        #: impostors" fail verification at the speakers
        self.authenticator = authenticator
        self._channels: Dict[int, ChannelConfig] = {}
        self._probes: Dict[int, Optional[Callable[[], bool]]] = {}
        self._suspended: set[int] = set()
        self.listener_counts: Dict[int, int] = {}
        self.announcements_sent = 0
        self.dead_skipped = 0        # probe-failed channels withheld
        self._seq = 0

    def add_channel(
        self,
        channel: ChannelConfig,
        probe: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._channels[channel.channel_id] = channel
        self._probes[channel.channel_id] = probe

    def remove_channel(self, channel_id: int) -> None:
        self._channels.pop(channel_id, None)
        self._probes.pop(channel_id, None)

    def suspend(self, channel_id: int) -> None:
        """MSNIP-style: stop advertising a listenerless channel."""
        self._suspended.add(channel_id)

    def resume(self, channel_id: int) -> None:
        self._suspended.discard(channel_id)

    def report_listeners(self, channel_id: int, count: int) -> None:
        """Out-of-band listener census; zero listeners suspends."""
        self.listener_counts[channel_id] = count
        if count == 0:
            self.suspend(channel_id)
        else:
            self.resume(channel_id)

    def live_entries(self) -> List[AnnounceEntry]:
        out = []
        for ch in self._channels.values():
            if ch.channel_id in self._suspended:
                continue
            probe = self._probes.get(ch.channel_id)
            if probe is not None and not probe():
                # the talker is dead: advertising its channel would hand
                # remotes a stream that can never play
                self.dead_skipped += 1
                continue
            out.append(
                AnnounceEntry(
                    channel_id=ch.channel_id,
                    group_ip=ch.group_ip,
                    port=ch.port,
                    codec_id=ch.codec_id,
                    name=ch.name,
                )
            )
        return out

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="catalog-announcer")

    def _run(self):
        sock = self.machine.net.socket()
        while True:
            self._seq += 1
            packet = AnnouncePacket(
                seq=self._seq,
                entries=tuple(self.live_entries()),
                valid_time=self.valid_time,
            )
            yield self.machine.cpu.run(5_000, domain="user")
            wire = packet.encode()
            if self.authenticator is not None:
                yield self.machine.cpu.run(
                    self.authenticator.sign_cycles(len(wire)), domain="user"
                )
                wire = self.authenticator.wrap(wire)
            sock.sendto(wire, (self.group, self.port))
            self.announcements_sent += 1
            yield Sleep(self.interval)


@dataclass
class CatalogEntryState:
    entry: AnnounceEntry
    last_seen: float
    valid_time: float = 0.0     # 0 = announcer predates leases


class CatalogListener:
    """Speaker-side: track the advertised channels; entries expire.

    Each entry lives for the ``valid_time`` its announcement advertised
    (the local ``expiry`` only backstops lease-less announcers), and a
    lapsed entry is deleted, not merely filtered — the dict cannot grow
    without bound under churn.  Announcements older (by serial
    comparison) than the newest one seen *from the same source* are
    dropped as stale — sequences are per-announcer streams.
    """

    def __init__(self, machine, expiry: float = 5.0,
                 group: str = CATALOG_GROUP, port: int = CATALOG_PORT,
                 trusted_names: Optional[set] = None, verifier=None):
        self.machine = machine
        self.expiry = expiry
        self.group = group
        self.port = port
        #: optional allow-list against impostor advertisements (§5.1)
        self.trusted_names = trusted_names
        #: optional signature verification (the proper §5.1 answer)
        self.verifier = verifier
        self.channels: Dict[int, CatalogEntryState] = {}
        self.rejected = 0
        self.stale_announces = 0
        self.expired = 0
        #: highest seq seen per announcer source IP — sequences are
        #: per-announcer streams, so freshness must be judged per source
        #: (one announcer's cadence must not mask another's)
        self._last_seq: Dict[str, int] = {}

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="catalog-listener")

    def _lease(self, st: CatalogEntryState) -> float:
        return st.valid_time if st.valid_time > 0 else self.expiry

    def _prune(self) -> None:
        now = self.machine.sim.now
        dead = [
            cid for cid, st in self.channels.items()
            if lease_expired(now, st.last_seen, self._lease(st))
        ]
        for cid in dead:
            del self.channels[cid]
            self.expired += 1

    def live_channels(self) -> List[AnnounceEntry]:
        self._prune()
        return [st.entry for st in self.channels.values()]

    def find(self, name: str) -> Optional[AnnounceEntry]:
        for entry in self.live_channels():
            if entry.name == name:
                return entry
        return None

    def _run(self):
        sock = self.machine.net.socket(self.port)
        sock.join_multicast(self.group)
        while True:
            msg = yield sock.recv()
            wire = msg.payload
            if self.verifier is not None:
                yield self.machine.cpu.run(
                    self.verifier.verify_cycles(len(wire)), domain="user"
                )
                wire = self.verifier.unwrap(wire)
                if wire is None:
                    self.rejected += 1
                    continue
            try:
                packet = parse_packet(wire)
            except ProtocolError:
                continue
            if not isinstance(packet, AnnouncePacket):
                continue
            source = msg.src[0]
            last = self._last_seq.get(source)
            if last is not None:
                delta = seq_delta(packet.seq, last)
                # 0 = duplicate; the upper serial half-window = behind us
                if delta == 0 or delta >= SEQ_MOD // 2:
                    self.stale_announces += 1
                    continue
            self._last_seq[source] = packet.seq
            now = self.machine.sim.now
            for entry in packet.entries:
                if (
                    self.trusted_names is not None
                    and entry.name not in self.trusted_names
                ):
                    self.rejected += 1
                    continue
                self.channels[entry.channel_id] = CatalogEntryState(
                    entry=entry, last_seen=now, valid_time=packet.valid_time
                )
            self._prune()
