"""Watchdog / health registry: per-node liveness and driven restarts.

The paper's deployment is meant to run unattended in a building — the
speakers are netboot ramdisk appliances (§3.4) precisely so a power-cycled
node comes back with no operator.  This module supplies the management
half of that story:

* every supervised node runs a tiny **heartbeat agent** on its own
  machine.  The agent charges a few CPU cycles per beat, so it starves
  honestly with the node: a killed process fails its liveness probe, a
  frozen process fails it too, and a halted CPU never gets to beat at
  all;
* the :class:`Supervisor` (the management plane — it runs on the
  simulator directly, like an operator's box outside the audio path)
  scans the registry every ``check_interval``; a node whose last beat is
  older than ``miss_threshold`` heartbeat intervals is marked **down**
  and a missed-heartbeat counter increments;
* if the node was registered with a ``restart`` action, the supervisor
  schedules it after ``restart_delay`` — modelling the watchdog-reset /
  power-cycle path — and counts the restart.

Heartbeats, misses, and restarts all land in telemetry
(``supervisor.{heartbeats,missed,restarts}[node]``) and are folded into
``pipeline_report()`` so a run's self-healing activity shows up next to
its audio ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.metrics.telemetry import get_telemetry
from repro.sim.process import Process, Sleep

#: health states
UP = "up"
DOWN = "down"
RESTARTING = "restarting"


@dataclass
class NodeHealth:
    """One supervised node's view in the registry."""

    name: str
    status: str = UP
    last_beat: float = float("-inf")
    beats: int = 0
    missed: int = 0          # scan passes that found the node silent
    restarts: int = 0        # restarts this supervisor drove
    restart_pending: bool = False


@dataclass
class SupervisorStats:
    heartbeats: int = 0
    missed_heartbeats: int = 0
    restarts: int = 0
    nodes_down: int = 0      # down transitions observed
    lease_expiries: int = 0  # discovery-lease expiries acted on

    #: populated by :meth:`Supervisor.snapshot`
    nodes: Dict[str, str] = field(default_factory=dict)


class Supervisor:
    """Health registry plus the scan/restart loop.

    Parameters
    ----------
    heartbeat_interval:
        how often each node's agent probes and beats.
    miss_threshold:
        how many heartbeat intervals of silence mark a node down.
    restart_delay:
        seconds between marking a node down and firing its restart
        action (the watchdog-reset latency); ``None`` disables driven
        restarts globally.
    """

    #: CPU cycles one heartbeat costs on the node's machine
    BEAT_CYCLES = 1000

    def __init__(
        self,
        sim,
        heartbeat_interval: float = 0.5,
        miss_threshold: int = 3,
        restart_delay: Optional[float] = 0.5,
        name: str = "supervisor0",
        telemetry=None,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.sim = sim
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold
        self.restart_delay = restart_delay
        self.name = name
        self.stats = SupervisorStats()
        self.nodes: Dict[str, NodeHealth] = {}
        self._probes: Dict[str, Callable[[], bool]] = {}
        self._restarts: Dict[str, Optional[Callable[[], None]]] = {}
        self._agents: Dict[str, Process] = {}
        self._proc: Optional[Process] = None
        self.telemetry = telemetry if telemetry is not None else get_telemetry()

    # -- registration ---------------------------------------------------------

    def watch(
        self,
        name: str,
        machine,
        probe: Callable[[], bool],
        restart: Optional[Callable[[], None]] = None,
    ) -> NodeHealth:
        """Supervise a node.

        ``probe`` is the node-local liveness check (process alive and not
        frozen); it runs inside the heartbeat agent *on the node's
        machine*, so a halted CPU silences the agent no matter what the
        probe would have said.  ``restart`` is invoked from the
        management plane after the node is marked down.
        """
        if name in self.nodes:
            raise ValueError(f"node {name!r} already supervised")
        health = NodeHealth(name=name, last_beat=self.sim.now)
        self.nodes[name] = health
        self._probes[name] = probe
        self._restarts[name] = restart
        self._agents[name] = Process.spawn(
            self.sim, self._agent(name, machine), name=f"hb/{name}"
        )
        return health

    def start(self) -> Process:
        """Start the scan loop (idempotent)."""
        if self._proc is None or not self._proc.alive:
            self._proc = Process.spawn(
                self.sim, self._scan(), name=f"{self.name}/scan"
            )
        return self._proc

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
        for agent in self._agents.values():
            agent.kill()

    def status(self, name: str) -> str:
        return self.nodes[name].status

    def snapshot(self) -> SupervisorStats:
        """Stats with the per-node status map filled in."""
        self.stats.nodes = {n: h.status for n, h in self.nodes.items()}
        return self.stats

    # -- the node-side agent --------------------------------------------------

    def _agent(self, name: str, machine):
        tel = self.telemetry
        c_beats = tel.counter(f"supervisor.heartbeats[{name}]")
        while True:
            yield Sleep(self.heartbeat_interval)
            # the beat costs real cycles on the node: a halted CPU parks
            # the agent right here and the registry goes stale honestly
            yield machine.cpu.run(self.BEAT_CYCLES, domain="user")
            if not self._probes[name]():
                continue
            health = self.nodes[name]
            health.last_beat = self.sim.now
            health.beats += 1
            if health.status == DOWN and not health.restart_pending:
                health.status = UP
            self.stats.heartbeats += 1
            c_beats.inc()

    # -- the management-plane scan -------------------------------------------

    def _scan(self):
        tel = self.telemetry
        deadline = self.heartbeat_interval * self.miss_threshold
        while True:
            yield Sleep(self.heartbeat_interval)
            now = self.sim.now
            for name, health in self.nodes.items():
                if health.restart_pending:
                    continue
                if now - health.last_beat <= deadline:
                    if health.status == DOWN:
                        health.status = UP
                    continue
                health.missed += 1
                self.stats.missed_heartbeats += 1
                tel.counter(f"supervisor.missed[{name}]").inc()
                if health.status != DOWN:
                    health.status = DOWN
                    self.stats.nodes_down += 1
                    tel.tracer.instant(
                        "supervisor.down", track=self.name, node=name,
                    )
                restart = self._restarts[name]
                if restart is not None and self.restart_delay is not None:
                    health.restart_pending = True
                    health.status = RESTARTING
                    self.sim.schedule(
                        self.restart_delay, self._do_restart, name
                    )

    def notify_lease_expired(self, name: str) -> bool:
        """Second health signal: a discovery lease lapsed for ``name``.

        Fed by :class:`repro.mgmt.controller.FleetController` when an
        entity's ADP lease ages out.  Re-uses the exact restart path the
        heartbeat scan drives — including the ``restart_pending`` latch —
        so a node both signals notice is still restarted exactly once.
        Returns ``True`` when a restart was scheduled (or the node was
        newly marked down with no restart action registered).
        """
        health = self.nodes.get(name)
        if health is None:
            return False          # not a supervised node (e.g. a remote)
        if health.restart_pending:
            return False          # heartbeat path already acting on it
        if self._probes[name]():
            return False          # lease lapse was transient; node is fine
        self.stats.lease_expiries += 1
        self.telemetry.counter(f"supervisor.lease_expiries[{name}]").inc()
        if health.status != DOWN:
            health.status = DOWN
            self.stats.nodes_down += 1
            self.telemetry.tracer.instant(
                "supervisor.lease_expired", track=self.name, node=name,
            )
        restart = self._restarts[name]
        if restart is not None and self.restart_delay is not None:
            health.restart_pending = True
            health.status = RESTARTING
            self.sim.schedule(self.restart_delay, self._do_restart, name)
        return True

    def _do_restart(self, name: str) -> None:
        health = self.nodes[name]
        restart = self._restarts[name]
        health.restart_pending = False
        if self._probes[name]():
            # the node came back on its own while we waited
            health.status = UP
            return
        restart()
        health.restarts += 1
        health.status = UP
        health.last_beat = self.sim.now  # restart grace: full deadline again
        self.stats.restarts += 1
        self.telemetry.counter(f"supervisor.restarts[{name}]").inc()
        self.telemetry.tracer.instant(
            "supervisor.restart", track=self.name, node=name,
        )
