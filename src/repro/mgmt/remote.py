"""Channel selection and central override (§5.3).

"All ESs within an administrative domain may need to be controlled
centrally (e.g., movies shown on TV sets on airplane seats can be
overridden by crew announcements)."

The :class:`ControlStation` multicasts management commands; each speaker
runs a :class:`ManagementAgent` that executes them: tune to a named
channel, set volume, or override every speaker onto an announcement
channel and restore them afterwards.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.platform.archive import pack_archive, unpack_archive
from repro.sim.process import Process, Timeout

MGMT_GROUP = "239.192.255.2"
MGMT_PORT = 4998


class ControlStation:
    """The central console."""

    def __init__(self, machine, group: str = MGMT_GROUP, port: int = MGMT_PORT):
        self.machine = machine
        self.group = group
        self.port = port
        self._sock = None
        self._seq = 0

    def _send(self, fields: Dict[str, bytes]) -> None:
        if self._sock is None:
            self._sock = self.machine.net.socket()
        self._seq += 1
        fields["seq"] = str(self._seq).encode()
        self._sock.sendto(pack_archive(fields), (self.group, self.port))

    def tune_all(self, group_ip: str, port: int) -> None:
        self._send({
            "cmd": b"tune",
            "group": group_ip.encode(),
            "port": str(port).encode(),
        })

    def override(self, group_ip: str, port: int) -> None:
        """Crew announcement: every speaker switches, remembering where
        it was."""
        self._send({
            "cmd": b"override",
            "group": group_ip.encode(),
            "port": str(port).encode(),
        })

    def release(self) -> None:
        """End of announcement: speakers return to their prior channel."""
        self._send({"cmd": b"release"})

    def set_volume(self, gain: float) -> None:
        self._send({"cmd": b"volume", "gain": repr(gain).encode()})

    def census(self, group_ip: str, port: int, window: float = 0.5):
        """Generator: count the speakers tuned to a channel.

        The MSNIP stand-in (§4.3): the station polls, tuned speakers
        answer, and the producer can suspend a channel nobody reports
        for.  (Real MSNIP asks the first-hop routers instead; the
        listener-count semantics are the same.)
        """
        reply_sock = self.machine.net.socket()
        self._seq += 1
        self._sock = self._sock or self.machine.net.socket()
        self._sock = self._sock
        fields = {
            "cmd": b"census",
            "seq": str(self._seq).encode(),
            "group": group_ip.encode(),
            "port": str(port).encode(),
            "reply_ip": self.machine.net.ip.encode(),
            "reply_port": str(reply_sock.port).encode(),
        }
        self._sock.sendto(pack_archive(fields), (self.group, self.port))
        count = 0
        deadline = self.machine.sim.now + window
        while True:
            remaining = deadline - self.machine.sim.now
            if remaining <= 0:
                break
            try:
                yield Timeout(reply_sock.recv(), remaining)
                count += 1
            except TimeoutError:
                break
        reply_sock.close()
        return count


class ManagementAgent:
    """Per-speaker command executor."""

    def __init__(self, speaker, group: str = MGMT_GROUP, port: int = MGMT_PORT):
        self.speaker = speaker
        self.machine = speaker.machine
        self.group = group
        self.port = port
        self.commands_executed = 0
        self._saved: Optional[tuple] = None

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="mgmt-agent")

    def _run(self):
        sock = self.machine.net.socket(self.port)
        sock.join_multicast(self.group)
        while True:
            msg = yield sock.recv()
            try:
                fields = unpack_archive(msg.payload)
            except ValueError:
                continue
            yield self.machine.cpu.run(10_000, domain="user")
            if fields.get("cmd") == b"census":
                self._answer_census(sock, fields)
            else:
                self._execute(fields)

    def _answer_census(self, sock, fields: Dict[str, bytes]) -> None:
        tuned_to = (self.speaker.group_ip, self.speaker.port)
        asked = (
            fields.get("group", b"").decode(),
            int(fields.get("port", b"0").decode() or 0),
        )
        if tuned_to == asked:
            sock.sendto(
                b"listening",
                (fields["reply_ip"].decode(),
                 int(fields["reply_port"].decode())),
            )
            self.commands_executed += 1

    def _execute(self, fields: Dict[str, bytes]) -> None:
        cmd = fields.get("cmd", b"")
        speaker = self.speaker
        if cmd == b"tune":
            speaker.retune(
                fields["group"].decode(), int(fields["port"].decode())
            )
        elif cmd == b"override":
            if self._saved is None:
                self._saved = (speaker.group_ip, speaker.port)
            speaker.retune(
                fields["group"].decode(), int(fields["port"].decode())
            )
        elif cmd == b"release":
            if self._saved is not None:
                group_ip, port = self._saved
                self._saved = None
                speaker.retune(group_ip, port)
        elif cmd == b"volume":
            speaker.gain = float(fields["gain"].decode())
        else:
            return
        self.commands_executed += 1
