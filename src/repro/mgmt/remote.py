"""Channel selection and central override (§5.3).

"All ESs within an administrative domain may need to be controlled
centrally (e.g., movies shown on TV sets on airplane seats can be
overridden by crew announcements)."

The :class:`ControlStation` multicasts management commands; each speaker
runs a :class:`ManagementAgent` that executes them: tune to a named
channel, set volume, or override every speaker onto an announcement
channel and restore them afterwards.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.protocol import (
    ACMP_CONNECT_RX_COMMAND,
    ACMP_CONNECT_RX_RESPONSE,
    ACMP_DISCONNECT_RX_COMMAND,
    ACMP_DISCONNECT_RX_RESPONSE,
    ACMP_OK,
    AECP_COMMAND,
    AECP_NO_SUCH_DESCRIPTOR,
    AECP_OK,
    AECP_READ_DESCRIPTOR,
    AECP_RESPONSE,
    AcmpPacket,
    AecpPacket,
    ProtocolError,
    parse_packet,
)
from repro.platform.archive import pack_archive, unpack_archive
from repro.sim.process import Process, Timeout

MGMT_GROUP = "239.192.255.2"
MGMT_PORT = 4998


class ControlStation:
    """The central console."""

    def __init__(self, machine, group: str = MGMT_GROUP, port: int = MGMT_PORT):
        self.machine = machine
        self.group = group
        self.port = port
        self._sock = None
        self._seq = 0

    def _send(self, fields: Dict[str, bytes]) -> None:
        if self._sock is None:
            self._sock = self.machine.net.socket()
        self._seq += 1
        fields["seq"] = str(self._seq).encode()
        self._sock.sendto(pack_archive(fields), (self.group, self.port))

    def tune_all(self, group_ip: str, port: int) -> None:
        self._send({
            "cmd": b"tune",
            "group": group_ip.encode(),
            "port": str(port).encode(),
        })

    def override(self, group_ip: str, port: int) -> None:
        """Crew announcement: every speaker switches, remembering where
        it was."""
        self._send({
            "cmd": b"override",
            "group": group_ip.encode(),
            "port": str(port).encode(),
        })

    def release(self) -> None:
        """End of announcement: speakers return to their prior channel."""
        self._send({"cmd": b"release"})

    def set_volume(self, gain: float) -> None:
        self._send({"cmd": b"volume", "gain": repr(gain).encode()})

    def census(self, group_ip: str, port: int, window: float = 0.5):
        """Generator: count the speakers tuned to a channel.

        The MSNIP stand-in (§4.3): the station polls, tuned speakers
        answer, and the producer can suspend a channel nobody reports
        for.  (Real MSNIP asks the first-hop routers instead; the
        listener-count semantics are the same.)
        """
        reply_sock = self.machine.net.socket()
        self._seq += 1
        self._sock = self._sock or self.machine.net.socket()
        self._sock = self._sock
        fields = {
            "cmd": b"census",
            "seq": str(self._seq).encode(),
            "group": group_ip.encode(),
            "port": str(port).encode(),
            "reply_ip": self.machine.net.ip.encode(),
            "reply_port": str(reply_sock.port).encode(),
        }
        self._sock.sendto(pack_archive(fields), (self.group, self.port))
        count = 0
        deadline = self.machine.sim.now + window
        while True:
            remaining = deadline - self.machine.sim.now
            if remaining <= 0:
                break
            try:
                yield Timeout(reply_sock.recv(), remaining)
                count += 1
            except TimeoutError:
                break
        reply_sock.close()
        return count


class ManagementAgent:
    """Per-speaker command executor.

    Besides the archive-packed console commands it now answers the
    controller's binary PDUs on the same socket: AECP READ_DESCRIPTOR
    (unicast reply with the speaker's descriptor) and ACMP
    CONNECT_RX/DISCONNECT_RX (retune the speaker — starting it on first
    connect if it booted parked — and acknowledge).  When the machine
    has a management NIC the agent binds there, keeping control-plane
    churn off the audio LAN.
    """

    def __init__(
        self,
        speaker,
        group: str = MGMT_GROUP,
        port: int = MGMT_PORT,
        entity_id: int = 0,
        descriptor_fn: Optional[Callable[[], Dict[str, bytes]]] = None,
        stack=None,
    ):
        self.speaker = speaker
        self.machine = speaker.machine
        self.group = group
        self.port = port
        self.entity_id = entity_id
        self.descriptor_fn = descriptor_fn
        self.stack = stack if stack is not None else self.machine.control_stack
        self.commands_executed = 0
        self.acmp_handled = 0
        self.aecp_handled = 0
        self.on_connected: Optional[Callable[[int], None]] = None
        self.on_disconnected: Optional[Callable[[], None]] = None
        self._saved: Optional[tuple] = None

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="mgmt-agent")

    def _run(self):
        sock = self.stack.socket(self.port)
        sock.join_multicast(self.group)
        while True:
            msg = yield sock.recv()
            pdu = None
            try:
                pdu = parse_packet(msg.payload)
            except ProtocolError:
                pass
            if pdu is not None:
                yield self.machine.cpu.run(10_000, domain="user")
                if isinstance(pdu, AecpPacket):
                    self._handle_aecp(sock, pdu, msg.src)
                elif isinstance(pdu, AcmpPacket):
                    self._handle_acmp(sock, pdu, msg.src)
                continue
            try:
                fields = unpack_archive(msg.payload)
            except ValueError:
                continue
            yield self.machine.cpu.run(10_000, domain="user")
            if fields.get("cmd") == b"census":
                self._answer_census(sock, fields)
            else:
                self._execute(fields)

    # -- ATDECC-style PDUs ----------------------------------------------------

    def default_descriptor(self) -> Dict[str, bytes]:
        sp = self.speaker
        return {
            "entity": str(self.entity_id).encode(),
            "name": getattr(sp, "name", self.machine.name).encode(),
            "group": (sp.group_ip or "").encode(),
            "port": str(sp.port).encode(),
            "gain": repr(getattr(sp, "gain", 1.0)).encode(),
        }

    def _handle_aecp(self, sock, pkt: AecpPacket, src) -> None:
        if pkt.message_type != AECP_COMMAND:
            return
        if pkt.entity_id != self.entity_id:
            return
        if pkt.command == AECP_READ_DESCRIPTOR:
            fields = (
                self.descriptor_fn()
                if self.descriptor_fn is not None
                else self.default_descriptor()
            )
            reply = AecpPacket(
                entity_id=self.entity_id,
                message_type=AECP_RESPONSE,
                command=pkt.command,
                status=AECP_OK,
                payload=pack_archive(fields),
                seq=pkt.seq,
            )
        else:
            reply = AecpPacket(
                entity_id=self.entity_id,
                message_type=AECP_RESPONSE,
                command=pkt.command,
                status=AECP_NO_SUCH_DESCRIPTOR,
                seq=pkt.seq,
            )
        sock.sendto(reply.encode(), src)
        self.aecp_handled += 1
        self.commands_executed += 1

    def _handle_acmp(self, sock, pkt: AcmpPacket, src) -> None:
        if pkt.listener_entity_id != self.entity_id:
            return
        speaker = self.speaker
        status = ACMP_OK
        if pkt.message_type == ACMP_CONNECT_RX_COMMAND:
            reply_type = ACMP_CONNECT_RX_RESPONSE
            speaker.retune(pkt.group_ip, pkt.port)
            if getattr(speaker, "_proc", None) is None:
                # booted parked: first CONNECT starts the receive loop
                speaker.start()
            if self.on_connected is not None:
                self.on_connected(pkt.channel_id)
        elif pkt.message_type == ACMP_DISCONNECT_RX_COMMAND:
            reply_type = ACMP_DISCONNECT_RX_RESPONSE
            speaker.retune(None, 0)
            if self.on_disconnected is not None:
                self.on_disconnected()
        else:
            return
        reply = AcmpPacket(
            message_type=reply_type,
            talker_entity_id=pkt.talker_entity_id,
            listener_entity_id=pkt.listener_entity_id,
            group_ip=pkt.group_ip,
            port=pkt.port,
            channel_id=pkt.channel_id,
            status=status,
            seq=pkt.seq,
        )
        sock.sendto(reply.encode(), src)
        self.acmp_handled += 1
        self.commands_executed += 1

    def _answer_census(self, sock, fields: Dict[str, bytes]) -> None:
        tuned_to = (self.speaker.group_ip, self.speaker.port)
        asked = (
            fields.get("group", b"").decode(),
            int(fields.get("port", b"0").decode() or 0),
        )
        if tuned_to == asked:
            sock.sendto(
                b"listening",
                (fields["reply_ip"].decode(),
                 int(fields["reply_port"].decode())),
            )
            self.commands_executed += 1

    def _execute(self, fields: Dict[str, bytes]) -> None:
        cmd = fields.get("cmd", b"")
        speaker = self.speaker
        if cmd == b"tune":
            speaker.retune(
                fields["group"].decode(), int(fields["port"].decode())
            )
        elif cmd == b"override":
            if self._saved is None:
                self._saved = (speaker.group_ip, speaker.port)
            speaker.retune(
                fields["group"].decode(), int(fields["port"].decode())
            )
        elif cmd == b"release":
            if self._saved is not None:
                group_ip, port = self._saved
                self._saved = None
                speaker.retune(group_ip, port)
        elif cmd == b"volume":
            speaker.gain = float(fields["gain"].decode())
        else:
            return
        self.commands_executed += 1
