"""Fleet controller: registry, enumeration, connection management.

The ACMP/AECP half of the dynamic control plane (after IEEE 1722.1
§8/§9).  A :class:`FleetController` listens on the discovery group and
keeps the authoritative fleet map the paper's census only approximates
by polling:

* **registry** — every ``ENTITY_AVAILABLE`` advert inserts or refreshes
  an :class:`EntityRecord`; refreshes must carry a *newer* serial-16
  ``available_index`` (:func:`repro.core.protocol.index_newer`) or they
  are counted as stale and ignored, so replayed or reordered adverts can
  never resurrect an old view.  ``ENTITY_DEPARTING`` retires a record
  immediately; anything else ages out when its advertised ``valid_time``
  lease lapses.
* **AECP enumeration** — the controller reads an entity's descriptor
  (channels served, gain, name) over the management request path with a
  seeded-timeout retry loop.
* **ACMP connection management** — tune/retune becomes a
  CONNECT_RX/DISCONNECT_RX transaction: command to the listener's
  management agent, response matched by sequence number, seeded
  exponential-ish timeout back-off, bounded retries, failure counted —
  never silent.

Lease expiry doubles as a health signal: when a supervisor is bound via
:meth:`FleetController.bind_supervisor`, an expired lease calls
``supervisor.notify_lease_expired(name)``, which schedules the same
guarded restart path heartbeat loss does (the ``restart_pending`` latch
prevents double restarts when both signals fire).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.protocol import (
    ACMP_CONNECT_RX_COMMAND,
    ACMP_CONNECT_RX_RESPONSE,
    ACMP_DISCONNECT_RX_COMMAND,
    ACMP_DISCONNECT_RX_RESPONSE,
    ACMP_OK,
    ADP_AVAILABLE,
    ADP_DEPARTING,
    ADP_DISCOVER,
    AECP_COMMAND,
    AECP_OK,
    AECP_READ_DESCRIPTOR,
    AECP_RESPONSE,
    ENTITY_CONTROLLER,
    AcmpPacket,
    AdpPacket,
    AecpPacket,
    ProtocolError,
    index_newer,
    parse_packet,
)
from repro.mgmt.discovery import (
    DEFAULT_VALID_TIME,
    DISCOVERY_GROUP,
    DISCOVERY_PORT,
    DISCOVERY_SOLICIT_GROUP,
    lease_expired,
)
from repro.metrics.telemetry import get_telemetry
from repro.platform.archive import unpack_archive
from repro.sim.process import Process, Timeout

#: registry entity states
ENT_AVAILABLE = "available"
ENT_DEPARTED = "departed"
ENT_EXPIRED = "expired"


@dataclass
class EntityRecord:
    """One fleet node as the controller currently believes it to be."""

    entity_id: int
    kind: int
    name: str
    ip: str
    mgmt_port: int
    channel_id: int
    valid_time: float
    available_index: int
    epoch: int
    last_seen: float
    state: str = ENT_AVAILABLE
    descriptor: Optional[Dict[str, str]] = None
    #: (group_ip, port, channel_id) of the stream this controller
    #: connected the entity to, if any
    connected: Optional[Tuple[str, int, int]] = None
    expired_at: Optional[float] = None

    @property
    def serving(self) -> int:
        """Channel the entity is on: controller-connected view first,
        falling back to what the entity itself advertises."""
        if self.connected is not None:
            return self.connected[2]
        return self.channel_id


@dataclass
class ControllerStats:
    adp_advertises: int = 0        # AVAILABLEs accepted (fresh)
    stale_adverts: int = 0         # AVAILABLEs rejected by serial check
    departs: int = 0               # clean DEPARTINGs honoured
    expiries: int = 0              # leases that lapsed (zombies aged out)
    enumerations: int = 0          # AECP descriptor reads completed
    enumeration_retries: int = 0
    enumeration_failures: int = 0
    acmp_connects: int = 0         # CONNECT transactions completed
    acmp_disconnects: int = 0
    acmp_retries: int = 0
    acmp_failures: int = 0         # transactions that exhausted retries
    pruned: int = 0                # dead records garbage-collected
    restarts: int = 0              # controller cold restarts
    discovers_sent: int = 0        # ENTITY_DISCOVER solicitations sent


class FleetController:
    """The administrative-domain controller (one per deployment).

    Runs on its own machine — preferentially on a management-only
    segment so registry churn cannot contend with audio traffic.
    """

    #: CPU cycles to process one inbound PDU or send one command
    PROCESS_CYCLES = 2000

    def __init__(
        self,
        machine,
        name: str = "controller0",
        group: str = DISCOVERY_GROUP,
        port: int = DISCOVERY_PORT,
        check_interval: float = 0.25,
        default_valid_time: float = DEFAULT_VALID_TIME,
        txn_timeout: float = 0.25,
        txn_retries: int = 3,
        timeout_jitter: float = 0.5,
        seed: int = 0,
        prune_after: Optional[float] = None,
        auto_enumerate: bool = False,
        telemetry=None,
    ):
        self.machine = machine
        self.sim = machine.sim
        self.name = name
        self.group = group
        self.port = port
        self.check_interval = check_interval
        self.default_valid_time = default_valid_time
        self.txn_timeout = txn_timeout
        self.txn_retries = txn_retries
        self.timeout_jitter = timeout_jitter
        self.seed = seed
        self.prune_after = prune_after
        self.auto_enumerate = auto_enumerate
        self.stack = machine.control_stack
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self._c_adv = self.telemetry.counter(f"ctl.adp_advertises[{name}]")
        self._c_exp = self.telemetry.counter(f"ctl.adp_expiries[{name}]")
        self._c_conn = self.telemetry.counter(f"ctl.acmp_connects[{name}]")
        self._c_fail = self.telemetry.counter(f"ctl.acmp_failures[{name}]")
        self._c_enum = self.telemetry.counter(f"ctl.enumerations[{name}]")
        self.entities: Dict[int, EntityRecord] = {}
        self.stats = ControllerStats()
        self.supervisor = None
        self.on_available: Optional[Callable[[EntityRecord, bool], None]] = None
        self.on_departed: Optional[Callable[[EntityRecord], None]] = None
        self.on_expired: Optional[Callable[[EntityRecord], None]] = None
        self.on_connected: Optional[
            Callable[[EntityRecord, int], None]
        ] = None
        self.on_disconnected: Optional[Callable[[EntityRecord], None]] = None
        self._rng = random.Random(seed)
        self._seq = 0
        self._listener: Optional[Process] = None
        self._txns: List[Process] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Process:
        self._listener = self.machine.spawn(
            self._listen(), name=f"{self.name}/adp-listen"
        )
        return self._listener

    def crash(self) -> None:
        """Kill the controller mid-flight: listener and every in-flight
        transaction die where they stand.  The registry is *not* wiped
        here — a crashed box keeps its RAM until someone reboots it."""
        if self._listener is not None:
            self._listener.kill()
            self._listener = None
        for txn in self._txns:
            txn.kill()
        self._txns.clear()

    def restart(self) -> Process:
        """Cold restart: the registry starts empty (leases are not
        persisted) and repopulates from live advertisements within one
        advertising interval."""
        self.crash()
        self.entities.clear()
        self._rng = random.Random(self.seed)
        self.stats.restarts += 1
        return self.start()

    @property
    def alive(self) -> bool:
        return self._listener is not None and self._listener.alive

    def bind_supervisor(self, supervisor) -> None:
        """Route lease expiries into ``supervisor.notify_lease_expired``
        keyed by the entity's advertised name."""
        self.supervisor = supervisor

    # -- registry queries ----------------------------------------------------

    def available(self) -> List[EntityRecord]:
        return [
            r for r in self.entities.values() if r.state == ENT_AVAILABLE
        ]

    def find(self, name: str) -> Optional[EntityRecord]:
        for rec in self.entities.values():
            if rec.name == name:
                return rec
        return None

    def fleet_map(self) -> Dict[int, List[str]]:
        """channel_id → sorted names of live entities serving it.

        This is the map the paper's census polls the fleet to rebuild;
        here it falls straight out of the registry."""
        out: Dict[int, List[str]] = {}
        for rec in self.entities.values():
            if rec.state == ENT_AVAILABLE and rec.serving:
                out.setdefault(rec.serving, []).append(rec.name)
        for names in out.values():
            names.sort()
        return out

    def census(self, channel_id: int) -> int:
        """Listener count for a channel, no polling round-trip needed."""
        return len(self.fleet_map().get(channel_id, []))

    # -- ADP listener --------------------------------------------------------

    def _listen(self):
        sock = self.stack.socket(self.port)
        sock.join_multicast(self.group)
        try:
            # cold-boot census: solicit the fleet instead of waiting out
            # every advertiser's periodic interval.  Runs again on
            # restart() for free — restart respawns this listener.
            yield self.machine.cpu.run(self.PROCESS_CYCLES, domain="user")
            sock.sendto(
                AdpPacket(
                    entity_id=0,
                    message_type=ADP_DISCOVER,
                    entity_kind=ENTITY_CONTROLLER,
                    name=self.name,
                ).encode(),
                (DISCOVERY_SOLICIT_GROUP, self.port),
            )
            self.stats.discovers_sent += 1
            while True:
                try:
                    msg = yield Timeout(sock.recv(), self.check_interval)
                except TimeoutError:
                    self._scan_leases()
                    continue
                yield self.machine.cpu.run(
                    self.PROCESS_CYCLES, domain="user"
                )
                try:
                    pkt = parse_packet(msg.payload)
                except ProtocolError:
                    continue
                if isinstance(pkt, AdpPacket):
                    self._handle_adp(pkt, msg.src)
                self._scan_leases()
        finally:
            sock.close()

    def _handle_adp(self, pkt: AdpPacket, src: Tuple[str, int]) -> None:
        rec = self.entities.get(pkt.entity_id)
        if pkt.message_type == ADP_AVAILABLE:
            if rec is not None and rec.state == ENT_AVAILABLE:
                if not index_newer(pkt.available_index, rec.available_index):
                    self.stats.stale_adverts += 1
                    return
                rec.ip = src[0]
                rec.mgmt_port = pkt.mgmt_port
                rec.channel_id = pkt.channel_id
                rec.valid_time = pkt.valid_time
                rec.available_index = pkt.available_index
                rec.epoch = pkt.epoch
                rec.last_seen = self.sim.now
                self.stats.adp_advertises += 1
                self._c_adv.inc()
                return
            returning = rec is not None
            rec = EntityRecord(
                entity_id=pkt.entity_id,
                kind=pkt.entity_kind,
                name=pkt.name,
                ip=src[0],
                mgmt_port=pkt.mgmt_port,
                channel_id=pkt.channel_id,
                valid_time=pkt.valid_time,
                available_index=pkt.available_index,
                epoch=pkt.epoch,
                last_seen=self.sim.now,
            )
            self.entities[pkt.entity_id] = rec
            self.stats.adp_advertises += 1
            self._c_adv.inc()
            if self.on_available is not None:
                self.on_available(rec, returning)
            if self.auto_enumerate and rec.mgmt_port:
                self.enumerate(rec.entity_id)
        elif pkt.message_type == ADP_DEPARTING:
            if rec is not None and rec.state == ENT_AVAILABLE:
                rec.state = ENT_DEPARTED
                rec.last_seen = self.sim.now
                self.stats.departs += 1
                if self.on_departed is not None:
                    self.on_departed(rec)

    def _scan_leases(self) -> None:
        now = self.sim.now
        dead: List[int] = []
        for rec in self.entities.values():
            if rec.state == ENT_AVAILABLE:
                valid = rec.valid_time or self.default_valid_time
                if lease_expired(now, rec.last_seen, valid):
                    rec.state = ENT_EXPIRED
                    rec.expired_at = now
                    self.stats.expiries += 1
                    self._c_exp.inc()
                    if self.supervisor is not None:
                        self.supervisor.notify_lease_expired(rec.name)
                    if self.on_expired is not None:
                        self.on_expired(rec)
            if (
                self.prune_after is not None
                and rec.state in (ENT_DEPARTED, ENT_EXPIRED)
                and now - rec.last_seen > self.prune_after
            ):
                dead.append(rec.entity_id)
        for entity_id in dead:
            del self.entities[entity_id]
            self.stats.pruned += 1
        self._txns = [t for t in self._txns if t.alive]

    # -- transactions --------------------------------------------------------

    def _txn_deadline(self, attempt: int) -> float:
        """Seeded retry timeout: linear back-off plus deterministic
        jitter drawn from the controller's RNG."""
        jitter = 1.0 + self._rng.random() * self.timeout_jitter
        return self.txn_timeout * (attempt + 1) * jitter

    def enumerate(self, entity_id: int) -> Process:
        """Spawn an AECP READ_DESCRIPTOR transaction; the process result
        is ``True`` on success."""
        rec = self.entities[entity_id]
        proc = self.machine.spawn(
            self._enumerate(rec), name=f"{self.name}/aecp:{rec.name}"
        )
        self._txns.append(proc)
        return proc

    def _enumerate(self, rec: EntityRecord):
        sock = self.stack.socket()
        try:
            for attempt in range(self.txn_retries):
                if attempt:
                    self.stats.enumeration_retries += 1
                self._seq += 1
                seq = self._seq
                cmd = AecpPacket(
                    entity_id=rec.entity_id,
                    message_type=AECP_COMMAND,
                    command=AECP_READ_DESCRIPTOR,
                    seq=seq,
                )
                yield self.machine.cpu.run(
                    self.PROCESS_CYCLES, domain="user"
                )
                sock.sendto(cmd.encode(), (rec.ip, rec.mgmt_port))
                deadline = self.sim.now + self._txn_deadline(attempt)
                while True:
                    remaining = deadline - self.sim.now
                    if remaining <= 0:
                        break
                    try:
                        msg = yield Timeout(sock.recv(), remaining)
                    except TimeoutError:
                        break
                    try:
                        pkt = parse_packet(msg.payload)
                    except ProtocolError:
                        continue
                    if (
                        isinstance(pkt, AecpPacket)
                        and pkt.message_type == AECP_RESPONSE
                        and pkt.seq == seq
                        and pkt.entity_id == rec.entity_id
                        and pkt.status == AECP_OK
                    ):
                        try:
                            fields = unpack_archive(bytes(pkt.payload))
                        except ValueError:
                            continue
                        rec.descriptor = {
                            k: v.decode("utf-8", errors="replace")
                            for k, v in fields.items()
                        }
                        self.stats.enumerations += 1
                        self._c_enum.inc()
                        return True
            self.stats.enumeration_failures += 1
            return False
        finally:
            sock.close()

    def connect(
        self,
        listener_entity_id: int,
        group_ip: str,
        port: int,
        channel_id: int,
        talker_entity_id: int = 0,
    ) -> Process:
        """Spawn an ACMP CONNECT_RX transaction tuning the listener to a
        talker's stream; the process result is ``True`` on success."""
        rec = self.entities[listener_entity_id]
        proc = self.machine.spawn(
            self._acmp(
                rec, ACMP_CONNECT_RX_COMMAND,
                group_ip, port, channel_id, talker_entity_id,
            ),
            name=f"{self.name}/acmp-connect:{rec.name}",
        )
        self._txns.append(proc)
        return proc

    def disconnect(
        self, listener_entity_id: int, talker_entity_id: int = 0
    ) -> Process:
        """Spawn an ACMP DISCONNECT_RX transaction parking the listener."""
        rec = self.entities[listener_entity_id]
        proc = self.machine.spawn(
            self._acmp(
                rec, ACMP_DISCONNECT_RX_COMMAND,
                "0.0.0.0", 0, 0, talker_entity_id,
            ),
            name=f"{self.name}/acmp-disconnect:{rec.name}",
        )
        self._txns.append(proc)
        return proc

    def _acmp(
        self,
        rec: EntityRecord,
        message_type: int,
        group_ip: str,
        port: int,
        channel_id: int,
        talker_entity_id: int,
    ):
        want = (
            ACMP_CONNECT_RX_RESPONSE
            if message_type == ACMP_CONNECT_RX_COMMAND
            else ACMP_DISCONNECT_RX_RESPONSE
        )
        sock = self.stack.socket()
        try:
            for attempt in range(self.txn_retries):
                if attempt:
                    self.stats.acmp_retries += 1
                self._seq += 1
                seq = self._seq
                cmd = AcmpPacket(
                    message_type=message_type,
                    talker_entity_id=talker_entity_id,
                    listener_entity_id=rec.entity_id,
                    group_ip=group_ip,
                    port=port,
                    channel_id=channel_id,
                    seq=seq,
                )
                yield self.machine.cpu.run(
                    self.PROCESS_CYCLES, domain="user"
                )
                sock.sendto(cmd.encode(), (rec.ip, rec.mgmt_port))
                deadline = self.sim.now + self._txn_deadline(attempt)
                while True:
                    remaining = deadline - self.sim.now
                    if remaining <= 0:
                        break
                    try:
                        msg = yield Timeout(sock.recv(), remaining)
                    except TimeoutError:
                        break
                    try:
                        pkt = parse_packet(msg.payload)
                    except ProtocolError:
                        continue
                    if (
                        isinstance(pkt, AcmpPacket)
                        and pkt.message_type == want
                        and pkt.seq == seq
                        and pkt.listener_entity_id == rec.entity_id
                        and pkt.status == ACMP_OK
                    ):
                        if message_type == ACMP_CONNECT_RX_COMMAND:
                            rec.connected = (group_ip, port, channel_id)
                            self.stats.acmp_connects += 1
                            self._c_conn.inc()
                            if self.on_connected is not None:
                                self.on_connected(rec, channel_id)
                        else:
                            rec.connected = None
                            rec.channel_id = 0
                            self.stats.acmp_disconnects += 1
                            if self.on_disconnected is not None:
                                self.on_disconnected(rec)
                        return True
            self.stats.acmp_failures += 1
            self._c_fail.inc()
            return False
        finally:
            sock.close()
