"""A small SNMP-flavoured management protocol and the ES MIB (§5.3).

"We want to investigate the entire range of management actions that may
be carried out on ESs and create an SNMP MIB to allow any NMS console to
manage ESs."

This is GET/GETNEXT/SET over UDP with the archive framing — not ASN.1/BER
(nothing in the experiments needs that fidelity) — but the data model is a
real OID tree with lexicographic GETNEXT walking, read-only vs read-write
objects, and an agent/manager pair.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.platform.archive import pack_archive, unpack_archive
from repro.sim.process import Process, Timeout

SNMP_PORT = 161

#: enterprise base for the Ethernet Speaker MIB
ES_MIB_BASE = "1.3.6.1.4.1.5550"

Oid = Tuple[int, ...]


def parse_oid(text: str) -> Oid:
    return tuple(int(part) for part in text.split("."))


def format_oid(oid: Oid) -> str:
    return ".".join(str(part) for part in oid)


class MibTree:
    """OID -> (getter, setter) with ordered traversal."""

    def __init__(self):
        self._objects: Dict[Oid, Tuple[Callable[[], bytes],
                                       Optional[Callable[[bytes], None]]]] = {}

    def register(
        self,
        oid: str,
        getter: Callable[[], bytes],
        setter: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        self._objects[parse_oid(oid)] = (getter, setter)

    def get(self, oid: str) -> Optional[bytes]:
        entry = self._objects.get(parse_oid(oid))
        if entry is None:
            return None
        return entry[0]()

    def get_next(self, oid: str) -> Optional[Tuple[str, bytes]]:
        """The first object lexicographically after ``oid``."""
        target = parse_oid(oid) if oid else ()
        following = sorted(o for o in self._objects if o > target)
        if not following:
            return None
        nxt = following[0]
        return format_oid(nxt), self._objects[nxt][0]()

    def set(self, oid: str, value: bytes) -> bool:
        entry = self._objects.get(parse_oid(oid))
        if entry is None or entry[1] is None:
            return False
        entry[1](value)
        return True

    def walk(self) -> List[Tuple[str, bytes]]:
        return [
            (format_oid(oid), getter())
            for oid, (getter, _) in sorted(self._objects.items())
        ]


def build_es_mib(speaker, node=None) -> MibTree:
    """The Ethernet Speaker MIB: identity, stream stats, control knobs."""
    mib = MibTree()
    machine = speaker.machine
    base = ES_MIB_BASE

    mib.register(f"{base}.1.1", lambda: speaker.name.encode())
    mib.register(
        f"{base}.1.2", lambda: str(machine.sim.now).encode()
    )  # uptime
    mib.register(f"{base}.1.3", lambda: machine.net.ip.encode())
    # stream state
    mib.register(f"{base}.2.1", lambda: speaker.state.encode())
    mib.register(
        f"{base}.2.2",
        lambda: f"{speaker.group_ip}:{speaker.port}".encode(),
    )
    mib.register(
        f"{base}.2.3", lambda: str(speaker.stats.data_rx).encode()
    )
    mib.register(
        f"{base}.2.4", lambda: str(speaker.stats.late_dropped).encode()
    )
    mib.register(
        f"{base}.2.5", lambda: str(speaker.stats.seq_gaps).encode()
    )
    if node is not None:
        mib.register(
            f"{base}.2.6", lambda: str(node.device.underruns).encode()
        )
    # control knobs (read-write)
    def set_gain(value: bytes) -> None:
        speaker.gain = float(value.decode())

    mib.register(
        f"{base}.3.1",
        lambda: repr(speaker.gain).encode(),
        setter=set_gain,
    )

    def set_channel(value: bytes) -> None:
        group, port = value.decode().split(":")
        speaker.retune(group, int(port))

    mib.register(
        f"{base}.3.2",
        lambda: f"{speaker.group_ip}:{speaker.port}".encode(),
        setter=set_channel,
    )
    return mib


class SnmpAgent:
    """Serves a MIB on UDP 161."""

    def __init__(self, machine, mib: MibTree, port: int = SNMP_PORT):
        self.machine = machine
        self.mib = mib
        self.port = port
        self.requests = 0

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="snmpd")

    def _run(self):
        sock = self.machine.net.socket(self.port)
        while True:
            msg = yield sock.recv()
            try:
                fields = unpack_archive(msg.payload)
            except ValueError:
                continue
            self.requests += 1
            yield self.machine.cpu.run(15_000, domain="user")
            op = fields.get("op", b"")
            oid = fields.get("oid", b"").decode()
            if op == b"get":
                value = self.mib.get(oid)
                reply = (
                    {"status": b"ok", "oid": oid.encode(), "value": value}
                    if value is not None
                    else {"status": b"nosuch", "oid": oid.encode()}
                )
            elif op == b"getnext":
                nxt = self.mib.get_next(oid)
                reply = (
                    {"status": b"ok", "oid": nxt[0].encode(), "value": nxt[1]}
                    if nxt is not None
                    else {"status": b"end"}
                )
            elif op == b"set":
                ok = self.mib.set(oid, fields.get("value", b""))
                reply = {"status": b"ok" if ok else b"nosuch"}
            else:
                reply = {"status": b"badop"}
            sock.sendto(pack_archive(reply), msg.src)


class SnmpManager:
    """NMS-console helpers; all methods are generators (network I/O)."""

    def __init__(self, machine, timeout: float = 1.0):
        self.machine = machine
        self.timeout = timeout
        self._sock = None

    def _request(self, agent_ip: str, fields: Dict[str, bytes]):
        if self._sock is None:
            self._sock = self.machine.net.socket()
        self._sock.sendto(pack_archive(fields), (agent_ip, SNMP_PORT))
        msg = yield Timeout(self._sock.recv(), self.timeout)
        return unpack_archive(msg.payload)

    def get(self, agent_ip: str, oid: str):
        reply = yield from self._request(
            agent_ip, {"op": b"get", "oid": oid.encode()}
        )
        return reply.get("value") if reply.get("status") == b"ok" else None

    def set(self, agent_ip: str, oid: str, value: bytes):
        reply = yield from self._request(
            agent_ip, {"op": b"set", "oid": oid.encode(), "value": value}
        )
        return reply.get("status") == b"ok"

    def walk(self, agent_ip: str):
        """GETNEXT sweep of the whole tree."""
        results = []
        oid = ""
        while True:
            reply = yield from self._request(
                agent_ip, {"op": b"getnext", "oid": oid.encode()}
            )
            if reply.get("status") != b"ok":
                break
            oid = reply["oid"].decode()
            results.append((oid, reply["value"]))
        return results
