"""Management and automation extensions the paper plans.

* :mod:`repro.mgmt.catalog` — the MFTP-inspired out-of-band channel
  catalog (§4.3): "a separate multicast group to announce the availability
  of data sets on other multicast groups", so "the user can see which
  programs are being multicast, rather than having to switch channels to
  monitor the audio transmissions".  Includes the listener-driven
  suspension idea (the MSNIP stand-in).
* :mod:`repro.mgmt.remote` — channel selection and central override
  (§5.3): "movies shown on TV sets on airplane seats can be overridden by
  crew announcements".
* :mod:`repro.mgmt.snmp` — the SNMP MIB sketch of §5.3: an agent on each
  speaker, a manager that can walk and set it.
* :mod:`repro.mgmt.volume` — automatic volume from ambient noise (§5.2),
  using the microphone model in :mod:`repro.audio.room`.
* :mod:`repro.mgmt.supervisor` — the watchdog/health registry: per-node
  heartbeats, missed-beat detection, driven restarts (the self-healing
  layer; see docs/faults.md).
* :mod:`repro.mgmt.discovery` / :mod:`repro.mgmt.controller` — the
  ATDECC-style dynamic control plane: ADP entity advertisement with
  valid_time leases and serial-16 available_index, AECP descriptor
  enumeration, and ACMP connect/disconnect transactions (see
  docs/control-plane.md).
"""

from repro.mgmt.catalog import CatalogAnnouncer, CatalogListener, CATALOG_GROUP, CATALOG_PORT
from repro.mgmt.controller import EntityRecord, FleetController
from repro.mgmt.discovery import (
    DISCOVERY_GROUP,
    DISCOVERY_PORT,
    EntityAdvertiser,
    lease_deadline,
    lease_expired,
)
from repro.mgmt.remote import ControlStation, ManagementAgent
from repro.mgmt.remotecontrol import RemoteControl
from repro.mgmt.snmp import MibTree, SnmpAgent, SnmpManager, ES_MIB_BASE
from repro.mgmt.supervisor import NodeHealth, Supervisor, SupervisorStats
from repro.mgmt.volume import AutoVolumeController

__all__ = [
    "NodeHealth",
    "Supervisor",
    "SupervisorStats",
    "EntityAdvertiser",
    "EntityRecord",
    "FleetController",
    "DISCOVERY_GROUP",
    "DISCOVERY_PORT",
    "lease_deadline",
    "lease_expired",
    "CatalogAnnouncer",
    "CatalogListener",
    "CATALOG_GROUP",
    "CATALOG_PORT",
    "ControlStation",
    "ManagementAgent",
    "RemoteControl",
    "MibTree",
    "SnmpAgent",
    "SnmpManager",
    "ES_MIB_BASE",
    "AutoVolumeController",
]
