"""ADP-style entity advertisement (after IEEE 1722.1 §6).

The paper's catalog/census is static-push: someone registers every node
by hand and a dead node stays on the books until an operator notices.
This module is the discovery half of the dynamic control plane: every
fleet node — speaker, rebroadcaster, standby, relay — runs an
:class:`EntityAdvertiser` that multicasts ``ENTITY_AVAILABLE`` on the
discovery group with

* a **valid_time lease**: a registry that hears nothing for longer than
  the advertised lease drops the entity on its own.  Zombies age out at
  lease expiry — no supervisor heartbeat required;
* a wrapping serial-16 **available_index** (compared with the same rule
  as the producer epoch, :func:`repro.core.protocol.index_newer`) bumped
  on every advertisement and on state changes, so a stale or replayed
  advertisement can never resurrect an older view of the entity;
* ``ENTITY_DEPARTING`` on clean shutdown, so planned leaves are
  distinguished from crashes.

The advertiser is *honest*: it probes its subject before every
advertisement and runs on the subject's own machine, charging CPU per
advert.  A crashed process fails the probe, a frozen one never gets the
cycles, and a halted CPU parks the advertiser entirely — in every case
the lease lapses and the fleet forgets the node, exactly as it should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.protocol import (
    ADP_AVAILABLE,
    ADP_DEPARTING,
    ADP_DISCOVER,
    AVAILABLE_INDEX_MOD,
    ENTITY_SPEAKER,
    AdpPacket,
    ProtocolError,
    parse_packet,
)
from repro.metrics.telemetry import get_telemetry
from repro.sim.core import SimError
from repro.sim.process import Process, Sleep, Timeout

DISCOVERY_GROUP = "239.192.255.3"
#: where controllers multicast ENTITY_DISCOVER solicitations.  A group
#: of its own, *not* DISCOVERY_GROUP: advertisers listen only here, so
#: the fleet's own advertisement traffic never wakes every advertiser
#: on every advert (that would be O(fleet^2) wakeups per interval)
DISCOVERY_SOLICIT_GROUP = "239.192.255.4"
DISCOVERY_PORT = 4997

#: default lease, seconds; refreshed every DEFAULT_INTERVAL
DEFAULT_VALID_TIME = 2.0
#: default advertisement cadence: a quarter of the lease, so three
#: refreshes can be lost before a live entity ages out anywhere
DEFAULT_INTERVAL = 0.5


# -- lease arithmetic ----------------------------------------------------------


def lease_deadline(last_seen: float, valid_time: float) -> float:
    """The instant a lease refreshed at ``last_seen`` lapses."""
    return last_seen + valid_time

def lease_expired(now: float, last_seen: float, valid_time: float) -> bool:
    """True once the lease has lapsed.  The boundary instant itself is
    still live (a refresh that lands exactly at the deadline counts), so
    ``expired`` is exactly ``now > deadline`` — never ``>=`` — and the
    worst-case detection time of a scanner polling every
    ``check_interval`` is ``valid_time + check_interval``."""
    return now > lease_deadline(last_seen, valid_time)


@dataclass
class AdvertiserStats:
    advertises: int = 0       # ENTITY_AVAILABLEs actually transmitted
    departs: int = 0          # clean ENTITY_DEPARTINGs sent
    suppressed: int = 0       # ticks where the probe failed (no advert)
    state_bumps: int = 0      # extra index bumps from state transitions
    solicited: int = 0        # early wakeups from ENTITY_DISCOVER


class EntityAdvertiser:
    """One fleet node's presence beacon.

    Parameters
    ----------
    machine:
        the *subject's* machine — advertising charges its CPU, so a
        halted or saturated node stops refreshing its lease honestly.
    probe:
        liveness check run before each advertisement (process alive and
        not frozen).  A failing probe suppresses the advert.
    channel_id_fn / epoch_fn:
        live state included in each advert: the channel currently
        served (0 = untuned) and the producer epoch for talkers.  An
        epoch change between ticks (failover, driven restart) bumps the
        available_index an extra step so registries see a state change,
        not just a refresh.
    stack:
        the network stack to advertise on; defaults to the machine's
        management stack when attached, else its primary stack.
    """

    #: CPU cycles one advertisement costs on the subject's machine
    ADVERTISE_CYCLES = 2000

    def __init__(
        self,
        machine,
        entity_id: int,
        entity_kind: int = ENTITY_SPEAKER,
        name: str = "",
        probe: Optional[Callable[[], bool]] = None,
        valid_time: float = DEFAULT_VALID_TIME,
        interval: Optional[float] = None,
        channel_id_fn: Optional[Callable[[], int]] = None,
        epoch_fn: Optional[Callable[[], int]] = None,
        mgmt_port: int = 0,
        group: str = DISCOVERY_GROUP,
        port: int = DISCOVERY_PORT,
        stack=None,
        telemetry=None,
    ):
        if valid_time <= 0:
            raise ValueError("valid_time must be positive")
        self.machine = machine
        self.entity_id = entity_id
        self.entity_kind = entity_kind
        self.name = name or f"entity-{entity_id}"
        self.probe = probe if probe is not None else (lambda: True)
        self.valid_time = valid_time
        self.interval = interval if interval is not None else valid_time / 4.0
        if self.interval <= 0 or self.interval > valid_time:
            raise ValueError("interval must be in (0, valid_time]")
        self.channel_id_fn = channel_id_fn or (lambda: 0)
        self.epoch_fn = epoch_fn or (lambda: 0)
        self.mgmt_port = mgmt_port
        self.group = group
        self.port = port
        self.stack = stack if stack is not None else machine.control_stack
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self._c_adv = self.telemetry.counter(f"adp.advertises[{self.name}]")
        self.stats = AdvertiserStats()
        self.available_index = 0
        self._seq = 0
        self._last_epoch: Optional[int] = None
        self._was_alive = False
        self._proc: Optional[Process] = None
        self._sock = None

    def start(self) -> Process:
        self._proc = self.machine.spawn(
            self._run(), name=f"{self.machine.name}/adp"
        )
        return self._proc

    def stop(self) -> None:
        """Silent stop (the advertiser itself dying); the lease lapses."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def depart(self) -> None:
        """Clean shutdown: one best-effort ENTITY_DEPARTING, then stop.

        Sent synchronously (a node on its way down does not reschedule),
        so registries can drop the entity immediately instead of waiting
        out the lease.
        """
        sock = self._sock
        if sock is None and self.stack is not None:
            sock = self.stack.socket()
        if sock is not None:
            self.available_index = (
                self.available_index + 1
            ) % AVAILABLE_INDEX_MOD
            sock.sendto(
                self._packet(ADP_DEPARTING).encode(), (self.group, self.port)
            )
            self.stats.departs += 1
        self.stop()

    def bump(self) -> None:
        """External state change (driven restart, failover): advance the
        index and advertise immediately instead of waiting out the tick.
        Management-plane callers only — no CPU is charged here."""
        if self._sock is None or not self.probe():
            return
        self.available_index = (self.available_index + 2) % AVAILABLE_INDEX_MOD
        self.stats.state_bumps += 1
        self._transmit(self._sock)

    def _packet(self, message_type: int) -> AdpPacket:
        self._seq += 1
        return AdpPacket(
            entity_id=self.entity_id,
            message_type=message_type,
            entity_kind=self.entity_kind,
            valid_time=self.valid_time,
            available_index=self.available_index,
            channel_id=self.channel_id_fn(),
            mgmt_port=self.mgmt_port,
            name=self.name,
            seq=self._seq,
            epoch=self.epoch_fn() or 0,
        )

    def _transmit(self, sock) -> None:
        sock.sendto(
            self._packet(ADP_AVAILABLE).encode(), (self.group, self.port)
        )
        self.stats.advertises += 1
        self._c_adv.inc()

    def _open_solicit_listener(self):
        """Bind the discovery port and join the solicitation group.

        Multicast delivery is destination-port keyed, so hearing a
        controller's ENTITY_DISCOVER requires owning the discovery port
        on this machine.  If another process already holds it (a second
        advertiser on the same box, or a co-located controller), this
        advertiser degrades gracefully to periodic-only: leases still
        refresh on cadence, the fleet just answers cold censuses a tick
        slower from this node.
        """
        try:
            lsock = self.stack.socket(self.port)
        except SimError:
            return None
        lsock.join_multicast(DISCOVERY_SOLICIT_GROUP)
        return lsock

    @staticmethod
    def _is_discover(msg) -> bool:
        try:
            pkt = parse_packet(msg.payload)
        except ProtocolError:
            return False
        return (
            isinstance(pkt, AdpPacket)
            and pkt.message_type == ADP_DISCOVER
        )

    def _run(self):
        sock = self.stack.socket()
        self._sock = sock
        lsock = self._open_solicit_listener()
        while True:
            alive = self.probe()
            if alive:
                epoch = self.epoch_fn() or 0
                # boot, return-from-the-dead, and failover epoch bumps
                # all advance the serial an extra step: registries must
                # see a *state change*, not a mere lease refresh
                if not self._was_alive or (
                    self._last_epoch is not None and epoch != self._last_epoch
                ):
                    self.available_index = (
                        self.available_index + 1
                    ) % AVAILABLE_INDEX_MOD
                    self.stats.state_bumps += 1
                self._last_epoch = epoch
                self._was_alive = True
                yield self.machine.cpu.run(
                    self.ADVERTISE_CYCLES, domain="user"
                )
                if not self.probe():
                    # the subject died while we were charging the CPU:
                    # advertising it now would be a lie
                    self.stats.suppressed += 1
                    self._was_alive = False
                else:
                    self.available_index = (
                        self.available_index + 1
                    ) % AVAILABLE_INDEX_MOD
                    self._transmit(sock)
            else:
                self.stats.suppressed += 1
                self._was_alive = False
            if lsock is None:
                yield Sleep(self.interval)
                continue
            # sleep out the tick, but wake early for ENTITY_DISCOVER: a
            # cold-booting controller should not have to wait out every
            # advertiser's interval to complete its census
            deadline = self.machine.sim.now + self.interval
            while True:
                remaining = deadline - self.machine.sim.now
                if remaining <= 0:
                    break
                try:
                    msg = yield Timeout(lsock.recv(), remaining)
                except TimeoutError:
                    break
                if self._is_discover(msg):
                    self.stats.solicited += 1
                    break
