"""Hardware profiles for the machines the paper names (§3.4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.machine import Machine
from repro.sim.core import Simulator


@dataclass(frozen=True)
class HardwareProfile:
    """Enough of a machine description to instantiate it."""

    name: str
    cpu_freq_hz: float
    ram_mb: int
    has_flash: bool
    has_audio: bool
    notes: str = ""


#: "Neoware EON 4000 machines that have a National Semiconductor Geode
#: processor running at 233MHz and 64Mb RAM, non-volatile memory (Flash)
#: and built-in audio and Ethernet interfaces" — cost under $50.
EON_4000 = HardwareProfile(
    name="Neoware EON 4000",
    cpu_freq_hz=233e6,
    ram_mb=64,
    has_flash=True,
    has_audio=True,
    notes="the Ethernet Speaker platform",
)

#: the cross-platform test machine of §3.4
SUN_ULTRA_10 = HardwareProfile(
    name="Sun Ultra 10",
    cpu_freq_hz=440e6,
    ram_mb=256,
    has_flash=False,
    has_audio=True,
    notes="cross-platform protocol testing",
)

#: "our testing on faster machines" that hid the pipeline problem
FAST_WORKSTATION = HardwareProfile(
    name="fast workstation",
    cpu_freq_hz=1000e6,
    ram_mb=512,
    has_flash=False,
    has_audio=True,
    notes="development workstation",
)


def make_machine(
    sim: Simulator, name: str, profile: HardwareProfile = EON_4000
) -> Machine:
    """Instantiate a machine from a profile."""
    machine = Machine(sim, name, cpu_freq_hz=profile.cpu_freq_hz)
    machine.nvram["profile"] = profile.name
    return machine
