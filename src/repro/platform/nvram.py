"""Non-volatile RAM: the one thing a netbooted speaker can trust (§5.1).

Tiny, write-limited, survives power loss.  The CA key digest lives here
because "any kind of authentication that is sent over the network may be
modified by a malicious entity" — the pinned digest is the root of trust
that cannot be.
"""

from __future__ import annotations

from typing import Dict, Optional


class Nvram:
    """A small persistent key/value store with a capacity cap."""

    def __init__(self, capacity_bytes: int = 4096):
        self.capacity_bytes = capacity_bytes
        self._data: Dict[str, bytes] = {}
        self.writes = 0

    def _used(self) -> int:
        return sum(len(k) + len(v) for k, v in self._data.items())

    @property
    def used_bytes(self) -> int:
        return self._used()

    def store(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("NVRAM stores bytes")
        projected = (
            self._used() - len(self._data.get(key, b"")) + len(key) + len(value)
        )
        if projected > self.capacity_bytes:
            raise ValueError(
                f"NVRAM full: {projected} > {self.capacity_bytes} bytes"
            )
        self._data[key] = bytes(value)
        self.writes += 1

    def load(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def erase(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self):
        return list(self._data)
