"""A tar-like archive with overlay semantics (§2.4).

"The configuration tar file is expanded over the skeleton /etc directory,
thus the machine-specific information overwrites any common
configuration."  Format (from scratch, little-endian):

    magic 'ESAR' | u32 count | count x (u16 path_len | path utf-8 |
                                        u32 data_len | data)
"""

from __future__ import annotations

import struct
from typing import Dict

_MAGIC = b"ESAR"


def pack_archive(files: Dict[str, bytes]) -> bytes:
    """Serialise a path->bytes mapping."""
    parts = [_MAGIC, struct.pack("<I", len(files))]
    for path in sorted(files):
        data = files[path]
        encoded = path.encode("utf-8")
        parts.append(struct.pack("<H", len(encoded)))
        parts.append(encoded)
        parts.append(struct.pack("<I", len(data)))
        parts.append(data)
    return b"".join(parts)


def unpack_archive(blob: bytes) -> Dict[str, bytes]:
    """Inverse of :func:`pack_archive`; raises ValueError on junk."""
    if blob[:4] != _MAGIC:
        raise ValueError("not an ES archive")
    (count,) = struct.unpack_from("<I", blob, 4)
    offset = 8
    files: Dict[str, bytes] = {}
    for _ in range(count):
        (path_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        path = blob[offset : offset + path_len].decode("utf-8")
        offset += path_len
        (data_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        files[path] = blob[offset : offset + data_len]
        offset += data_len
    if len(files) != count:
        raise ValueError("duplicate paths in archive")
    return files


def overlay(skeleton: Dict[str, bytes], extra: Dict[str, bytes]) -> Dict[str, bytes]:
    """Expand ``extra`` over ``skeleton``: machine-specific wins."""
    merged = dict(skeleton)
    merged.update(extra)
    return merged
