"""Ramdisk kernel images (§2.4).

"We decided to use a ramdisk-based kernel that is loaded over the network.
The ramdisk is part of the kernel, so that when an ES loads its kernel, it
gets the root filesystem and a set of utilities which include the
rebroadcast software.  The ramdisk contains only programs and data that
are common to all ESs."

An image is the skeleton root filesystem plus the boot server's public key
material ("the boot server's ssh public keys are stored in the ramdisk").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class RamdiskImage:
    """Kernel + embedded root filesystem, ready to TFTP."""

    version: str
    files: Dict[str, bytes] = field(default_factory=dict)
    boot_server_key: bytes = b""

    @property
    def size_bytes(self) -> int:
        """Transfer size: files plus a fixed kernel-text allowance."""
        return 2_000_000 + sum(len(v) for v in self.files.values())

    def checksum(self) -> bytes:
        h = hashlib.sha256()
        h.update(self.version.encode())
        for path in sorted(self.files):
            h.update(path.encode())
            h.update(self.files[path])
        h.update(self.boot_server_key)
        return h.digest()


#: the skeleton /etc every speaker shares before its overlay arrives
DEFAULT_SKELETON = {
    "/etc/es.conf": b"channel=auto\nvolume=70\n",
    "/etc/hostname": b"es-unconfigured\n",
    "/bin/es-player": b"\x7fELF es-player placeholder",
    "/bin/rebroadcast": b"\x7fELF rebroadcast placeholder",
    "/usr/share/doc/netboot-howto.txt": (
        b"PXE netboot HOWTO for the i386 platform (submitted upstream)\n"
    ),
}


def build_ramdisk(
    version: str = "1.0",
    boot_server_key: bytes = b"",
    extra_files: Dict[str, bytes] | None = None,
) -> RamdiskImage:
    """Assemble an image the way the OpenBSD install-media script would."""
    files = dict(DEFAULT_SKELETON)
    if extra_files:
        files.update(extra_files)
    return RamdiskImage(
        version=version, files=files, boot_server_key=boot_server_key
    )
