"""The network boot sequence: DHCP -> PXE/TFTP -> config fetch (§2.4).

"Each machine's network-related configuration is acquired via DHCP, the
rest are in a tar file that is scp'd from a boot server (note that the
boot server's ssh public keys are stored in the ramdisk)."

The flow, end to end on the simulated LAN:

1. the speaker broadcasts a DHCP DISCOVER from 0.0.0.0 and gets an
   OFFER/ACK carrying its address plus the boot server's;
2. it TFTPs the ramdisk kernel image (a real multi-megabyte transfer —
   boot time scales with LAN bandwidth and speaker count);
3. it requests its configuration archive over the "scp" port; the
   response is authenticated with the key embedded in the ramdisk and
   expanded over the skeleton ``/etc``.

Message framing reuses :mod:`repro.platform.archive`.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.platform.archive import overlay, pack_archive, unpack_archive
from repro.platform.image import RamdiskImage
from repro.sim.process import Process, Timeout

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68
TFTP_PORT = 69
CONFIG_PORT = 1022

TFTP_BLOCK = 1400


def _mac_tag(key: bytes, payload: bytes) -> bytes:
    return hmac_mod.new(key, payload, hashlib.sha256).digest()


class DhcpServer:
    """Hands out addresses and the boot-server pointer."""

    def __init__(self, machine, pool_prefix: str = "10.1.9.",
                 boot_server_ip: str = "", first_host: int = 10):
        self.machine = machine
        self.pool_prefix = pool_prefix
        self.boot_server_ip = boot_server_ip or machine.net.ip
        self._next_host = first_host
        self.leases: Dict[str, str] = {}

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="dhcpd")

    def _lease_for(self, client_id: str) -> str:
        if client_id not in self.leases:
            self.leases[client_id] = f"{self.pool_prefix}{self._next_host}"
            self._next_host += 1
        return self.leases[client_id]

    def _run(self):
        machine = self.machine
        sock = machine.net.socket(DHCP_SERVER_PORT)
        while True:
            msg = yield sock.recv()
            try:
                fields = unpack_archive(msg.payload)
            except ValueError:
                continue
            mtype = fields.get("type", b"")
            client_id = fields.get("client_id", b"").decode()
            if not client_id:
                continue
            yield machine.cpu.run(20_000, domain="sys")
            if mtype == b"discover":
                reply = {
                    "type": b"offer",
                    "client_id": client_id.encode(),
                    "ip": self._lease_for(client_id).encode(),
                    "boot_server": self.boot_server_ip.encode(),
                }
            elif mtype == b"request":
                reply = {
                    "type": b"ack",
                    "client_id": client_id.encode(),
                    "ip": self._lease_for(client_id).encode(),
                    "boot_server": self.boot_server_ip.encode(),
                }
            else:
                continue
            sock.sendto(
                pack_archive(reply), ("255.255.255.255", DHCP_CLIENT_PORT)
            )


class BootServer:
    """Serves the ramdisk image over TFTP and config archives over 'scp'.

    ``secret_key`` is the boot server's host key; its public half (here:
    the key itself, standing in for an ssh host public key) is embedded in
    the ramdisk image so clients can authenticate the config archive.
    """

    def __init__(self, machine, image: RamdiskImage, secret_key: bytes,
                 configs: Optional[Dict[str, Dict[str, bytes]]] = None,
                 default_config: Optional[Dict[str, bytes]] = None):
        self.machine = machine
        self.image = image
        self.secret_key = secret_key
        self.configs = configs or {}
        self.default_config = default_config or {}
        self.tftp_transfers = 0
        self.config_served = 0

    def start(self) -> None:
        self.machine.spawn(self._tftp(), name="tftpd")
        self.machine.spawn(self._configd(), name="configd")

    def _image_blob(self) -> bytes:
        body = pack_archive(
            dict(
                self.image.files,
                **{
                    "__version__": self.image.version.encode(),
                    "__bootkey__": self.image.boot_server_key,
                },
            )
        )
        padding = max(0, self.image.size_bytes - len(body))
        return body + bytes(padding)

    def _tftp(self):
        """Listen for RRQs; each transfer moves to an ephemeral port so
        concurrent clients don't trample each other (as in real TFTP)."""
        machine = self.machine
        sock = machine.net.socket(TFTP_PORT)
        blob = self._image_blob()
        while True:
            msg = yield sock.recv()
            if not msg.payload.startswith(b"RRQ"):
                continue
            self.tftp_transfers += 1
            machine.spawn(
                self._transfer(blob, msg.src), name="tftpd-worker"
            )

    def _transfer(self, blob: bytes, client):
        machine = self.machine
        sock = machine.net.socket()
        total_blocks = (len(blob) + TFTP_BLOCK - 1) // TFTP_BLOCK
        for block_no in range(total_blocks):
            chunk = blob[block_no * TFTP_BLOCK : (block_no + 1) * TFTP_BLOCK]
            header = b"DAT" + block_no.to_bytes(4, "little")
            yield machine.cpu.run(3_000, domain="sys")
            sock.sendto(header + chunk, client)
            try:
                ack = yield Timeout(sock.recv(), 2.0)
            except TimeoutError:
                sock.close()
                return  # client died; abandon transfer
            if not ack.payload.startswith(b"ACK"):
                sock.close()
                return
        sock.sendto(b"EOT", client)
        sock.close()

    def _configd(self):
        machine = self.machine
        sock = machine.net.socket(CONFIG_PORT)
        while True:
            msg = yield sock.recv()
            client_id = msg.payload.decode(errors="replace")
            files = self.configs.get(client_id, self.default_config)
            blob = pack_archive(files)
            yield machine.cpu.run(50_000, domain="sys")
            self.config_served += 1
            sock.sendto(_mac_tag(self.secret_key, blob) + blob, msg.src)


@dataclass
class BootResult:
    """What a successfully booted speaker knows."""

    ip: str
    boot_server: str
    image_version: str
    etc: Dict[str, bytes] = field(default_factory=dict)
    boot_seconds: float = 0.0
    image_bytes: int = 0


def netboot(machine, client_id: str = "", retries: int = 3):
    """Generator: run the PXE boot sequence on ``machine``.

    The machine must be attached to the LAN (its NIC starts at 0.0.0.0).
    Returns a :class:`BootResult`; raises TimeoutError if the LAN never
    answers.
    """
    client_id = client_id or machine.name
    start_time = machine.sim.now
    sock = machine.net.socket(DHCP_CLIENT_PORT)

    def recv_dhcp(want_type: bytes, budget: float):
        """Wait for our own reply; broadcasts for other clients are
        everyone's business on a shared segment, so filter by client_id."""
        deadline = machine.sim.now + budget
        while machine.sim.now < deadline:
            remaining = max(1e-6, deadline - machine.sim.now)
            msg = yield Timeout(sock.recv(), remaining)
            try:
                fields = unpack_archive(msg.payload)
            except ValueError:
                continue
            if (
                fields.get("type") == want_type
                and fields.get("client_id", b"").decode() == client_id
            ):
                return fields
        raise TimeoutError(f"{client_id}: no DHCP {want_type.decode()}")

    # -- DHCP ----------------------------------------------------------------
    offer = None
    for _ in range(retries):
        sock.sendto(
            pack_archive({"type": b"discover", "client_id": client_id.encode()}),
            ("255.255.255.255", DHCP_SERVER_PORT),
        )
        try:
            offer = yield from recv_dhcp(b"offer", 1.0)
            break
        except TimeoutError:
            continue
    if offer is None:
        raise TimeoutError(f"{client_id}: no DHCP offer")
    sock.sendto(
        pack_archive({"type": b"request", "client_id": client_id.encode()}),
        ("255.255.255.255", DHCP_SERVER_PORT),
    )
    ack = yield from recv_dhcp(b"ack", 2.0)
    my_ip = ack["ip"].decode()
    boot_server = ack["boot_server"].decode()
    machine.net.nic.ip = my_ip  # interface configured

    # -- TFTP the ramdisk ------------------------------------------------------
    tftp = machine.net.socket()
    tftp.sendto(b"RRQ ramdisk.img", (boot_server, TFTP_PORT))
    chunks = []
    while True:
        msg = yield Timeout(tftp.recv(), 5.0)
        if msg.payload.startswith(b"EOT"):
            break
        if not msg.payload.startswith(b"DAT"):
            continue
        chunks.append(msg.payload[7:])
        yield machine.cpu.run(2_000, domain="sys")
        # reply to the transfer worker's (ephemeral) port, per TFTP
        tftp.sendto(b"ACK" + msg.payload[3:7], msg.src)
    blob = b"".join(chunks)
    image_files = unpack_archive(blob)
    version = image_files.pop("__version__", b"?").decode()
    boot_key = image_files.pop("__bootkey__", b"")

    # -- config archive over 'scp' -----------------------------------------------
    cfg_sock = machine.net.socket()
    cfg_sock.sendto(client_id.encode(), (boot_server, CONFIG_PORT))
    reply = (yield Timeout(cfg_sock.recv(), 5.0)).payload
    tag, cfg_blob = reply[:32], reply[32:]
    if _mac_tag(boot_key, cfg_blob) != tag:
        raise PermissionError(
            f"{client_id}: config archive failed host-key verification"
        )
    config_files = unpack_archive(cfg_blob)
    skeleton_etc = {
        path: data
        for path, data in image_files.items()
        if path.startswith("/etc/")
    }
    etc = overlay(skeleton_etc, config_files)

    return BootResult(
        ip=my_ip,
        boot_server=boot_server,
        image_version=version,
        etc=etc,
        boot_seconds=machine.sim.now - start_time,
        image_bytes=len(blob),
    )
