"""The Ethernet Speaker platform: hardware, boot, configuration (§2.4).

A speaker "has to be essentially maintenance-free": it PXE-boots a
ramdisk kernel over the network, gets its network identity from DHCP, and
fetches a machine-specific configuration archive from a boot server whose
key is baked into the ramdisk.  The configuration archive "is expanded
over the skeleton /etc directory, thus the machine-specific information
overwrites any common configuration".

All of that is modelled here: profiles for the Neoware EON 4000 and the
test machines, NVRAM, the ramdisk image builder, a tar-like archive with
overlay semantics, and the DHCP + TFTP + config-fetch boot sequence.
"""

from repro.platform.hardware import (
    EON_4000,
    FAST_WORKSTATION,
    SUN_ULTRA_10,
    HardwareProfile,
    make_machine,
)
from repro.platform.nvram import Nvram
from repro.platform.archive import pack_archive, unpack_archive
from repro.platform.image import RamdiskImage, build_ramdisk
from repro.platform.netboot import BootServer, DhcpServer, netboot

__all__ = [
    "HardwareProfile",
    "EON_4000",
    "SUN_ULTRA_10",
    "FAST_WORKSTATION",
    "make_machine",
    "Nvram",
    "pack_archive",
    "unpack_archive",
    "RamdiskImage",
    "build_ramdisk",
    "DhcpServer",
    "BootServer",
    "netboot",
]
