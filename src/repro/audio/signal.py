"""Deterministic test-signal generators.

Everything returns float64 mono arrays in [-1, 1]; stereo fan-out happens at
encode time.  All stochastic generators take an explicit seed so experiments
replay exactly.
"""

from __future__ import annotations

import numpy as np


def silence(duration: float, sample_rate: int = 44100) -> np.ndarray:
    """``duration`` seconds of zeros."""
    return np.zeros(int(round(duration * sample_rate)))


def sine(
    freq: float,
    duration: float,
    sample_rate: int = 44100,
    amplitude: float = 0.8,
    phase: float = 0.0,
) -> np.ndarray:
    """A pure tone — the quickstart's test signal."""
    t = np.arange(int(round(duration * sample_rate))) / sample_rate
    return amplitude * np.sin(2 * np.pi * freq * t + phase)


def chirp(
    f0: float,
    f1: float,
    duration: float,
    sample_rate: int = 44100,
    amplitude: float = 0.8,
) -> np.ndarray:
    """Linear sweep from f0 to f1; good for catching dropped blocks."""
    n = int(round(duration * sample_rate))
    t = np.arange(n) / sample_rate
    inst = f0 + (f1 - f0) * t / max(duration, 1e-9)
    phase = 2 * np.pi * np.cumsum(inst) / sample_rate
    return amplitude * np.sin(phase)


def white_noise(
    duration: float,
    sample_rate: int = 44100,
    amplitude: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n = int(round(duration * sample_rate))
    return amplitude * rng.uniform(-1.0, 1.0, n)


def pink_noise(
    duration: float,
    sample_rate: int = 44100,
    amplitude: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """1/f-shaped noise via FFT filtering of white noise."""
    rng = np.random.default_rng(seed)
    n = int(round(duration * sample_rate))
    white = rng.standard_normal(n)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    freqs[0] = freqs[1] if len(freqs) > 1 else 1.0
    spectrum /= np.sqrt(freqs)
    shaped = np.fft.irfft(spectrum, n)
    peak = np.max(np.abs(shaped)) or 1.0
    return amplitude * shaped / peak


def music(
    duration: float,
    sample_rate: int = 44100,
    seed: int = 0,
    amplitude: float = 0.7,
) -> np.ndarray:
    """Music-like content: a random walk over a pentatonic scale with
    harmonics and note envelopes.  Spectrally rich enough to exercise the
    psychoacoustic codec in a realistic way."""
    rng = np.random.default_rng(seed)
    scale = 220.0 * 2 ** (np.array([0, 3, 5, 7, 10, 12]) / 12.0)
    n = int(round(duration * sample_rate))
    out = np.zeros(n)
    pos = 0
    degree = rng.integers(0, len(scale))
    while pos < n:
        note_len = int(sample_rate * rng.uniform(0.12, 0.4))
        note_len = min(note_len, n - pos)
        degree = int(np.clip(degree + rng.integers(-2, 3), 0, len(scale) - 1))
        f = scale[degree] * rng.choice([0.5, 1.0, 1.0, 2.0])
        t = np.arange(note_len) / sample_rate
        tone = np.zeros(note_len)
        for harmonic, gain in ((1, 1.0), (2, 0.5), (3, 0.25), (4, 0.12)):
            tone += gain * np.sin(2 * np.pi * f * harmonic * t)
        envelope = np.exp(-3.0 * t) * np.minimum(1.0, t * 200.0)
        out[pos : pos + note_len] += tone * envelope
        pos += note_len
    peak = np.max(np.abs(out)) or 1.0
    return amplitude * out / peak


def speech_like(
    duration: float,
    sample_rate: int = 44100,
    seed: int = 0,
    amplitude: float = 0.6,
) -> np.ndarray:
    """Speech-shaped signal: noise bursts amplitude-modulated at syllabic
    rate with formant-ish band emphasis.  Stands in for announcements."""
    rng = np.random.default_rng(seed)
    n = int(round(duration * sample_rate))
    carrier = rng.standard_normal(n)
    spectrum = np.fft.rfft(carrier)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    emphasis = np.exp(-(((freqs - 500.0) / 700.0) ** 2)) + 0.4 * np.exp(
        -(((freqs - 1800.0) / 900.0) ** 2)
    )
    shaped = np.fft.irfft(spectrum * emphasis, n)
    t = np.arange(n) / sample_rate
    syllables = 0.5 * (1 + np.sin(2 * np.pi * 4.0 * t + rng.uniform(0, 6.28)))
    pauses = (np.sin(2 * np.pi * 0.7 * t) > -0.6).astype(float)
    out = shaped * syllables * pauses
    peak = np.max(np.abs(out)) or 1.0
    return amplitude * out / peak


def announcement(
    duration: float, sample_rate: int = 44100, seed: int = 1
) -> np.ndarray:
    """A louder speech-like signal preceded by an attention chime."""
    chime = sine(880.0, min(0.3, duration), sample_rate, amplitude=0.9)
    rest = speech_like(
        max(duration - 0.3, 0.0), sample_rate, seed=seed, amplitude=0.9
    )
    return np.concatenate([chime, rest])[: int(round(duration * sample_rate))]
