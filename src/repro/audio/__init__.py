"""Audio formats, encodings, signals, and analysis.

This package plays the role of the small, well-defined format world that the
paper leans on (§2.1): whatever proprietary format an application decodes,
what crosses the audio-device interface is PCM described by a handful of
parameters — encoding, sample rate, precision, channels.
"""

from repro.audio.params import (
    CD_QUALITY,
    PHONE_QUALITY,
    AudioEncoding,
    AudioParams,
)
from repro.audio.encodings import decode_samples, encode_samples
from repro.audio.signal import (
    announcement,
    chirp,
    music,
    pink_noise,
    silence,
    sine,
    speech_like,
    white_noise,
)
from repro.audio.analysis import (
    discontinuity_count,
    rms_level,
    segmental_snr_db,
    silence_ratio,
    snr_db,
)
from repro.audio.wav import read_wav, write_wav

__all__ = [
    "AudioEncoding",
    "AudioParams",
    "CD_QUALITY",
    "PHONE_QUALITY",
    "encode_samples",
    "decode_samples",
    "sine",
    "chirp",
    "white_noise",
    "pink_noise",
    "music",
    "speech_like",
    "announcement",
    "silence",
    "snr_db",
    "segmental_snr_db",
    "rms_level",
    "silence_ratio",
    "discontinuity_count",
    "read_wav",
    "write_wav",
]
