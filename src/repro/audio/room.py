"""A small acoustic model of the room around an Ethernet Speaker.

Supports the paper's automatic-volume future work (§5.2): the ES compares
its *own output* against the ambient level captured by the built-in
microphone and adjusts gain so background music ducks under quiet rooms and
announcements ride over noisy ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class AmbientProfile:
    """Ambient noise level (RMS, 0..1) as a function of time.

    ``steps`` is a list of (start_time, level); the level holds until the
    next step.  An empty profile is a silent room.
    """

    steps: List[Tuple[float, float]] = field(default_factory=list)

    def level_at(self, t: float) -> float:
        level = 0.0
        for start, value in self.steps:
            if t >= start:
                level = value
            else:
                break
        return level

    @classmethod
    def constant(cls, level: float) -> "AmbientProfile":
        return cls(steps=[(0.0, level)])


class Room:
    """Mixes speaker output and ambient noise into a microphone signal.

    The coupling coefficient models distance/absorption between the
    speaker cone and the mic; real rooms put it well below 1.
    """

    def __init__(
        self,
        ambient: AmbientProfile | None = None,
        coupling: float = 0.6,
    ):
        if not 0.0 <= coupling <= 1.0:
            raise ValueError(f"coupling must be in [0,1]: {coupling}")
        self.ambient = ambient or AmbientProfile()
        self.coupling = coupling
        #: most recent speaker output RMS, set by the playback path
        self.speaker_rms = 0.0

    def mic_rms(self, t: float) -> float:
        """RMS level the microphone hears at time ``t`` (powers add)."""
        amb = self.ambient.level_at(t)
        return float(
            ((self.coupling * self.speaker_rms) ** 2 + amb**2) ** 0.5
        )

    def ambient_rms(self, t: float) -> float:
        """Ambient-only level, i.e. what the mic would hear if the
        speaker paused — the controller estimates this by subtracting its
        known output contribution."""
        return self.ambient.level_at(t)
