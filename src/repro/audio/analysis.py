"""Signal quality metrics.

Used by the tandem-coding experiment (§2.2: does Vorbis-at-max-quality on
top of MP3 stay inaudible?) and by the playback verifiers that check what a
speaker's DAC actually emitted against what the application wrote.
"""

from __future__ import annotations

import numpy as np


def _mono(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 2:
        return x.mean(axis=1)
    return x


def rms_level(x: np.ndarray) -> float:
    """Root-mean-square level of a signal (0 for empty input)."""
    x = _mono(x)
    if len(x) == 0:
        return 0.0
    return float(np.sqrt(np.mean(x * x)))


def snr_db(reference: np.ndarray, test: np.ndarray) -> float:
    """Signal-to-noise ratio of ``test`` against ``reference`` in dB.

    Arrays are truncated to the common length.  Returns ``inf`` for a
    bit-exact match and ``-inf`` for zero reference power.
    """
    ref = _mono(reference)
    tst = _mono(test)
    n = min(len(ref), len(tst))
    ref, tst = ref[:n], tst[:n]
    noise = ref - tst
    signal_power = float(np.sum(ref * ref))
    noise_power = float(np.sum(noise * noise))
    if signal_power == 0.0:
        return float("-inf")
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)


def segmental_snr_db(
    reference: np.ndarray,
    test: np.ndarray,
    segment: int = 2048,
    floor_db: float = -10.0,
    ceil_db: float = 80.0,
) -> float:
    """Mean per-segment SNR — tracks audible quality better than global SNR
    because quiet passages count as much as loud ones."""
    ref = _mono(reference)
    tst = _mono(test)
    n = min(len(ref), len(tst))
    snrs = []
    for start in range(0, n - segment + 1, segment):
        r = ref[start : start + segment]
        t = tst[start : start + segment]
        sp = float(np.sum(r * r))
        if sp < 1e-10:
            continue
        npow = float(np.sum((r - t) ** 2))
        if npow == 0.0:
            snrs.append(ceil_db)
        else:
            snrs.append(
                float(np.clip(10 * np.log10(sp / npow), floor_db, ceil_db))
            )
    if not snrs:
        return float("inf")
    return float(np.mean(snrs))


def silence_ratio(x: np.ndarray, threshold: float = 1e-4) -> float:
    """Fraction of samples whose magnitude is below ``threshold``.

    A speaker that underran (ring buffer empty → driver inserts silence,
    §2.1.1) shows an elevated silence ratio versus the source material.
    """
    x = _mono(x)
    if len(x) == 0:
        return 1.0
    return float(np.mean(np.abs(x) < threshold))


def discontinuity_count(x: np.ndarray, jump: float = 0.5) -> int:
    """Number of sample-to-sample jumps larger than ``jump``.

    Dropped blocks splice unrelated waveform sections together and show up
    as large discontinuities — the "noticeable audio quality loss" of an
    unlimited-rate sender (§3.1)."""
    x = _mono(x)
    if len(x) < 2:
        return 0
    return int(np.sum(np.abs(np.diff(x)) > jump))
