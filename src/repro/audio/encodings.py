"""PCM sample codecs: linear formats and G.711 mu-law / A-law.

All functions translate between wire bytes and float64 arrays in [-1, 1]
shaped ``(frames, channels)``.  The G.711 implementations follow the ITU-T
segmented companding tables (8-bit codewords, 14/13-bit linear dynamic
range), written with numpy so a minute of CD audio converts in milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.audio.params import AudioEncoding, AudioParams

_MU = 255.0
_ALAW_A = 87.6


def _to_float(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def _clip(samples: np.ndarray) -> np.ndarray:
    return np.clip(_to_float(samples), -1.0, 1.0)


def mulaw_encode(samples: np.ndarray) -> np.ndarray:
    """Float [-1,1] -> mu-law codewords (uint8, bit-inverted per G.711)."""
    x = _clip(samples)
    magnitude = np.log1p(_MU * np.abs(x)) / np.log1p(_MU)
    quantized = np.floor(magnitude * 127.0 + 0.5).astype(np.int16)
    codes = np.where(x < 0, 0x80 | quantized, quantized).astype(np.uint8)
    return (~codes) & 0xFF  # G.711 transmits the complement


def mulaw_decode(codes: np.ndarray) -> np.ndarray:
    """Mu-law codewords -> float [-1,1]."""
    codes = (~np.asarray(codes, dtype=np.uint8)) & 0xFF
    sign = np.where(codes & 0x80, -1.0, 1.0)
    magnitude = (codes & 0x7F).astype(np.float64) / 127.0
    return sign * (np.expm1(magnitude * np.log1p(_MU)) / _MU)


def alaw_encode(samples: np.ndarray) -> np.ndarray:
    """Float [-1,1] -> A-law codewords (uint8, even bits inverted)."""
    x = _clip(samples)
    absx = np.abs(x)
    small = absx < (1.0 / _ALAW_A)
    compressed = np.where(
        small,
        (_ALAW_A * absx) / (1.0 + np.log(_ALAW_A)),
        (1.0 + np.log(_ALAW_A * np.maximum(absx, 1e-12)))
        / (1.0 + np.log(_ALAW_A)),
    )
    quantized = np.floor(compressed * 127.0 + 0.5).astype(np.int16)
    codes = np.where(x < 0, quantized, 0x80 | quantized).astype(np.uint8)
    return codes ^ 0x55  # alternate-bit inversion


def alaw_decode(codes: np.ndarray) -> np.ndarray:
    """A-law codewords -> float [-1,1]."""
    codes = np.asarray(codes, dtype=np.uint8) ^ 0x55
    sign = np.where(codes & 0x80, 1.0, -1.0)
    compressed = (codes & 0x7F).astype(np.float64) / 127.0
    small = compressed < (1.0 / (1.0 + np.log(_ALAW_A)))
    magnitude = np.where(
        small,
        compressed * (1.0 + np.log(_ALAW_A)) / _ALAW_A,
        np.exp(compressed * (1.0 + np.log(_ALAW_A)) - 1.0) / _ALAW_A,
    )
    return sign * magnitude


def encode_samples(samples: np.ndarray, params: AudioParams) -> bytes:
    """Float samples shaped (frames,) or (frames, channels) -> wire bytes.

    Mono input is duplicated across a stereo device's channels.
    """
    x = _clip(samples)
    if x.ndim == 1:
        x = x[:, np.newaxis]
    if x.shape[1] == 1 and params.channels == 2:
        x = np.repeat(x, 2, axis=1)
    if x.shape[1] != params.channels:
        raise ValueError(
            f"sample array has {x.shape[1]} channels, device expects "
            f"{params.channels}"
        )
    flat = x.reshape(-1)  # interleave
    enc = params.encoding
    if enc is AudioEncoding.SLINEAR16:
        return (
            np.round(flat * 32767.0).astype("<i2").tobytes()
        )
    if enc is AudioEncoding.SLINEAR8:
        return np.round(flat * 127.0).astype(np.int8).tobytes()
    if enc is AudioEncoding.ULINEAR8:
        return (np.round(flat * 127.0) + 128).astype(np.uint8).tobytes()
    if enc is AudioEncoding.ULAW:
        return mulaw_encode(flat).tobytes()
    if enc is AudioEncoding.ALAW:
        return alaw_encode(flat).tobytes()
    raise ValueError(f"unsupported encoding {enc}")


def decode_samples(data: bytes, params: AudioParams) -> np.ndarray:
    """Wire bytes -> float array shaped (frames, channels) in [-1, 1]."""
    enc = params.encoding
    if enc is AudioEncoding.SLINEAR16:
        flat = np.frombuffer(data, dtype="<i2").astype(np.float64) / 32767.0
    elif enc is AudioEncoding.SLINEAR8:
        flat = np.frombuffer(data, dtype=np.int8).astype(np.float64) / 127.0
    elif enc is AudioEncoding.ULINEAR8:
        raw = np.frombuffer(data, dtype=np.uint8).astype(np.float64)
        flat = (raw - 128.0) / 127.0
    elif enc is AudioEncoding.ULAW:
        flat = mulaw_decode(np.frombuffer(data, dtype=np.uint8))
    elif enc is AudioEncoding.ALAW:
        flat = alaw_decode(np.frombuffer(data, dtype=np.uint8))
    else:
        raise ValueError(f"unsupported encoding {enc}")
    frames = len(flat) // params.channels
    return flat[: frames * params.channels].reshape(frames, params.channels)
