"""Minimal RIFF/WAVE reader and writer (PCM16 only), written from scratch.

Used by the time-shifting example (§3.3: "applications may be developed to
process the audio stream, e.g. time-shifting Internet radio transmissions")
to park a captured stream on disk in a format any tool can open.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.audio.params import AudioEncoding, AudioParams
from repro.audio.encodings import decode_samples, encode_samples


def write_wav(
    path: Union[str, Path],
    samples: np.ndarray,
    sample_rate: int = 44100,
) -> int:
    """Write float samples (mono or (frames, channels)) as PCM16 WAV.

    Returns the number of bytes written.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, np.newaxis]
    channels = x.shape[1]
    params = AudioParams(
        AudioEncoding.SLINEAR16, sample_rate, 2 if channels == 2 else 1
    )
    pcm = encode_samples(x, params)
    header = _wav_header(len(pcm), sample_rate, channels)
    payload = header + pcm
    Path(path).write_bytes(payload)
    return len(payload)


def _wav_header(data_bytes: int, sample_rate: int, channels: int) -> bytes:
    byte_rate = sample_rate * channels * 2
    block_align = channels * 2
    return b"".join(
        [
            b"RIFF",
            struct.pack("<I", 36 + data_bytes),
            b"WAVE",
            b"fmt ",
            struct.pack(
                "<IHHIIHH", 16, 1, channels, sample_rate, byte_rate,
                block_align, 16,
            ),
            b"data",
            struct.pack("<I", data_bytes),
        ]
    )


def read_wav(path: Union[str, Path]) -> Tuple[np.ndarray, int]:
    """Read a PCM16 WAV file; returns (samples (frames, channels), rate)."""
    raw = Path(path).read_bytes()
    if raw[:4] != b"RIFF" or raw[8:12] != b"WAVE":
        raise ValueError(f"{path}: not a RIFF/WAVE file")
    offset = 12
    fmt = None
    data = None
    while offset + 8 <= len(raw):
        chunk_id = raw[offset : offset + 4]
        (chunk_size,) = struct.unpack_from("<I", raw, offset + 4)
        body = raw[offset + 8 : offset + 8 + chunk_size]
        if chunk_id == b"fmt ":
            fmt = struct.unpack_from("<HHIIHH", body, 0)
        elif chunk_id == b"data":
            data = body
        offset += 8 + chunk_size + (chunk_size & 1)
    if fmt is None or data is None:
        raise ValueError(f"{path}: missing fmt or data chunk")
    audio_format, channels, sample_rate, _, _, bits = fmt
    if audio_format != 1 or bits != 16:
        raise ValueError(f"{path}: only PCM16 supported, got fmt={fmt}")
    params = AudioParams(
        AudioEncoding.SLINEAR16, sample_rate, 2 if channels == 2 else 1
    )
    return decode_samples(data, params), sample_rate
