"""Audio device parameters, mirroring OpenBSD's ``audio(4)`` info block.

An application configures the device with an ``AUDIO_SETINFO`` ioctl carrying
exactly these fields; the VAD forwards them verbatim to the master side, and
the rebroadcaster embeds them in every control packet so a speaker can decode
the stream without ever contacting the producer (§2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AudioEncoding(enum.Enum):
    """Wire encodings supported by the audio layer (a subset of audio(4))."""

    ULAW = "mulaw"          # G.711 mu-law, 8 bit
    ALAW = "alaw"           # G.711 A-law, 8 bit
    SLINEAR8 = "slinear8"   # signed linear, 8 bit
    SLINEAR16 = "slinear16" # signed linear, 16 bit little-endian
    ULINEAR8 = "ulinear8"   # unsigned linear, 8 bit

    @property
    def precision(self) -> int:
        """Bits per sample for this encoding."""
        return 16 if self is AudioEncoding.SLINEAR16 else 8

    @property
    def wire_id(self) -> int:
        """Stable one-byte identifier used in control packets."""
        return _WIRE_IDS[self]

    @classmethod
    def from_wire_id(cls, wire_id: int) -> "AudioEncoding":
        try:
            return _FROM_WIRE[wire_id]
        except KeyError:
            raise ValueError(f"unknown encoding id {wire_id}") from None


_WIRE_IDS = {
    AudioEncoding.ULAW: 1,
    AudioEncoding.ALAW: 2,
    AudioEncoding.SLINEAR8: 3,
    AudioEncoding.SLINEAR16: 4,
    AudioEncoding.ULINEAR8: 5,
}
_FROM_WIRE = {v: k for k, v in _WIRE_IDS.items()}


@dataclass(frozen=True)
class AudioParams:
    """Immutable description of a PCM stream.

    The arithmetic here is what the rebroadcaster's rate limiter uses to
    answer "how long does this block take to *play*?" (§3.1).
    """

    encoding: AudioEncoding = AudioEncoding.SLINEAR16
    sample_rate: int = 44100
    channels: int = 2

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive: {self.sample_rate}")
        if self.channels not in (1, 2):
            raise ValueError(f"channels must be 1 or 2: {self.channels}")

    @property
    def precision(self) -> int:
        """Bits per sample."""
        return self.encoding.precision

    @property
    def frame_bytes(self) -> int:
        """Bytes per sample frame (one sample for every channel)."""
        return (self.precision // 8) * self.channels

    @property
    def bytes_per_second(self) -> int:
        """Raw PCM data rate."""
        return self.frame_bytes * self.sample_rate

    @property
    def bits_per_second(self) -> int:
        return self.bytes_per_second * 8

    def duration_of(self, nbytes: int) -> float:
        """Playback seconds represented by ``nbytes`` of PCM."""
        return nbytes / self.bytes_per_second

    def bytes_for(self, duration: float) -> int:
        """PCM bytes needed for ``duration`` seconds, frame-aligned."""
        frames = round(duration * self.sample_rate)
        return frames * self.frame_bytes

    def frames_of(self, nbytes: int) -> int:
        """Whole sample frames contained in ``nbytes``."""
        return nbytes // self.frame_bytes

    def describe(self) -> str:
        return (
            f"{self.encoding.value} {self.sample_rate}Hz "
            f"{self.precision}bit {'stereo' if self.channels == 2 else 'mono'}"
        )


#: 44.1 kHz / 16-bit / stereo — the "CD-quality stereo" streams of Figures 4-5.
CD_QUALITY = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)

#: 8 kHz mu-law mono — the classic low-bit-rate channel that stays
#: uncompressed under the paper's selective-compression policy (§2.2).
PHONE_QUALITY = AudioParams(AudioEncoding.ULAW, 8000, 1)
