"""Measurement utilities mirroring the paper's instrumentation.

Figure 4 plots userland CPU usage and Figure 5 context-switch rates, both
"gathered by vmstat over a sixty second period at one second intervals".
:class:`~repro.metrics.vmstat.VmstatSampler` is that tool for simulated
machines.  :mod:`repro.metrics.telemetry` generalises it: a process-wide
but injectable registry of counters/gauges/histograms plus a sim-clock
tracer (:mod:`repro.metrics.trace`) with Chrome ``trace_event`` export,
feeding the :class:`~repro.metrics.telemetry.PipelineReport` every
benchmark consumes.
"""

from repro.metrics.vmstat import VmstatSample, VmstatSampler
from repro.metrics.report import ascii_table, percent, ratio, series_summary
from repro.metrics.telemetry import (
    NULL,
    ChannelReport,
    Counter,
    Gauge,
    Histogram,
    PipelineReport,
    Telemetry,
    get_telemetry,
    log_buckets,
    set_default,
)
from repro.metrics.trace import Tracer

__all__ = [
    "VmstatSampler",
    "VmstatSample",
    "ascii_table",
    "percent",
    "ratio",
    "series_summary",
    "Telemetry",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "PipelineReport",
    "ChannelReport",
    "NULL",
    "get_telemetry",
    "set_default",
    "log_buckets",
]
