"""Measurement utilities mirroring the paper's instrumentation.

Figure 4 plots userland CPU usage and Figure 5 context-switch rates, both
"gathered by vmstat over a sixty second period at one second intervals".
:class:`~repro.metrics.vmstat.VmstatSampler` is that tool for simulated
machines.
"""

from repro.metrics.vmstat import VmstatSample, VmstatSampler
from repro.metrics.report import ascii_table, series_summary

__all__ = ["VmstatSampler", "VmstatSample", "ascii_table", "series_summary"]
