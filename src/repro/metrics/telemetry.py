"""Process-wide but injectable telemetry: counters, gauges, histograms.

The paper's evaluation (§3) argues from quantities you can only get by
instrumenting the running system — per-hop latency, jitter, buffer levels,
CPU figures.  This module is that instrumentation layer:

* a :class:`Telemetry` registry holding named :class:`Counter`,
  :class:`Gauge` and fixed-bucket :class:`Histogram` instruments, plus a
  :class:`~repro.metrics.trace.Tracer` bound to the same virtual clock;
* a **disabled mode** (:data:`NULL`) whose instruments are shared no-op
  singletons, so instrumented hot paths cost one attribute call when
  telemetry is off and benchmarks stay honest;
* :class:`PipelineReport`, the derived end-to-end view (latency
  percentiles, jitter, loss conservation, compression) that
  :class:`~repro.core.system.EthernetSpeakerSystem` exposes and the
  benchmarks consume.

Components take a ``telemetry=None`` constructor argument and fall back to
the process-wide default (:func:`get_telemetry`), which starts as
:data:`NULL`.  Tests and systems inject their own registry instead of
mutating the global one; :func:`set_default` exists for whole-process runs
(CLI tools, notebooks).

Instrument names are dotted paths with an optional ``[label]`` suffix
(``"rebroadcaster.data_sent[lobby]"``); :meth:`Telemetry.total` sums a
metric across labels, which is what the conservation checks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.report import ascii_table, ratio
from repro.metrics.trace import NULL_TRACER, Tracer


def log_buckets(lo: float, hi: float, per_decade: int = 4) -> Tuple[float, ...]:
    """Geometric histogram bounds from ``lo`` to at least ``hi``.

    Deterministic and cheap; the default latency buckets span 1 µs to
    10 s with four buckets per decade.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    bounds = []
    step = 10.0 ** (1.0 / per_decade)
    edge = lo
    while edge < hi * (1.0 + 1e-12):
        bounds.append(edge)
        edge *= step
    bounds.append(edge)
    return tuple(bounds)


#: default bounds for time-valued histograms (seconds): 1 µs .. 10 s
DEFAULT_TIME_BUCKETS = log_buckets(1e-6, 10.0, per_decade=4)
#: default bounds for size/depth-valued histograms
DEFAULT_DEPTH_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; remembers its min and max."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``bounds`` are ascending bucket upper edges; one overflow bucket
    catches everything above the last edge.  Exact min/max/sum are kept
    alongside the buckets so reports can bracket the interpolation.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending and non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        # linear scan: bounds lists are short and mostly hit early; a
        # bisect would pay more in call overhead at these sizes
        for i, edge in enumerate(self.bounds):
            if value <= edge:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0..100), interpolated inside
        the containing bucket and clamped to the exact observed range."""
        if self.count == 0:
            return 0.0
        target = (p / 100.0) * self.count
        seen = 0
        lower = 0.0
        for i, n in enumerate(self.buckets):
            upper = self.bounds[i] if i < len(self.bounds) else self.vmax
            if n and seen + n >= target:
                frac = (target - seen) / n
                est = lower + (upper - lower) * max(0.0, min(1.0, frac))
                return max(self.vmin, min(self.vmax, est))
            seen += n
            lower = upper
        return self.vmax

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


# -- the disabled mode ----------------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (1.0,))


class Telemetry:
    """The registry.  One per system under test (injectable), or one per
    process via :func:`set_default`.

    Parameters
    ----------
    clock:
        zero-argument callable returning virtual seconds; usually
        ``lambda: sim.now`` (or pass ``sim=``).
    enabled:
        a disabled registry hands out shared no-op instruments and a
        disabled tracer; every recording call degrades to a constant-time
        no-op so hot paths can be instrumented unconditionally.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 sim=None, enabled: bool = True):
        if sim is not None and clock is None:
            clock = lambda: sim.now  # noqa: E731
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.tracer = (
            Tracer(clock=self.clock) if enabled else NULL_TRACER
        )

    # -- instrument access (get-or-create) ---------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    # -- one-shot conveniences ----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        if self.enabled:
            self.histogram(name, bounds).observe(value)

    # -- aggregation --------------------------------------------------------------

    def total(self, metric: str) -> int:
        """Sum a counter across labels: ``total("x.sent")`` adds
        ``x.sent`` and every ``x.sent[...]``."""
        prefix = metric + "["
        return sum(
            c.value for name, c in self.counters.items()
            if name == metric or name.startswith(prefix)
        )

    def snapshot(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "min": g.min, "max": g.max}
                for n, g in sorted(self.gauges.items()) if g.samples
            },
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }

    def report(self) -> str:
        """Everything, as ascii tables (counters, gauges, histograms,
        span aggregates)."""
        parts = []
        if self.counters:
            parts.append("counters:\n" + ascii_table(
                ["counter", "value"],
                [[n, c.value] for n, c in sorted(self.counters.items())],
            ))
        live_gauges = [
            (n, g) for n, g in sorted(self.gauges.items()) if g.samples
        ]
        if live_gauges:
            parts.append("gauges:\n" + ascii_table(
                ["gauge", "value", "min", "max"],
                [[n, g.value, g.min, g.max] for n, g in live_gauges],
            ))
        if self.histograms:
            rows = []
            for n, h in sorted(self.histograms.items()):
                s = h.snapshot()
                rows.append([n, s["count"], s["mean"], s["p50"], s["p99"],
                             s["max"]])
            parts.append("histograms:\n" + ascii_table(
                ["histogram", "count", "mean", "p50", "p99", "max"], rows,
            ))
        if self.tracer.events:
            parts.append("spans:\n" + self.tracer.summary())
        return "\n\n".join(parts) if parts else "(no telemetry recorded)"


#: the shared disabled registry; the default everywhere
NULL = Telemetry(enabled=False)

_default: Telemetry = NULL


def get_telemetry() -> Telemetry:
    """The process-wide default registry (``NULL`` unless overridden)."""
    return _default


def set_default(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` as the process default; ``None`` resets to
    :data:`NULL`.  Returns the previous default so callers can restore."""
    global _default
    previous = _default
    _default = telemetry if telemetry is not None else NULL
    return previous


# -- the derived end-to-end view ---------------------------------------------------


@dataclass
class ChannelReport:
    """Per-channel pipeline accounting (one rebroadcaster fan-out)."""

    name: str
    channel_id: int
    speakers: int
    data_sent: int = 0
    control_sent: int = 0
    send_failures: int = 0
    data_received: int = 0
    played: int = 0
    late_dropped: int = 0
    waiting_dropped: int = 0
    #: receive-side playout filtering (all included in data_received)
    dup_dropped: int = 0
    reorder_dropped: int = 0
    decode_failed: int = 0
    #: data from the wrong producer incarnation (also in data_received):
    #: stragglers from a dead producer after a failover, or early blocks
    #: from a new one whose control has not been seen yet
    epoch_dropped: int = 0
    #: *data* copies lost at speaker sockets (overflow while a node was
    #: hung or slow, plus whatever was queued when it died) — classified
    #: by packet type so control traffic never pads the data ledger
    socket_drops: int = 0
    #: data packets still unconsumed in speaker receive queues (crashed
    #: nodes keep their socket bound, so downtime arrivals sit here)
    in_flight: int = 0
    suspended_blocks: int = 0
    compression_ratio: float = 1.0

    @property
    def expected_deliveries(self) -> int:
        """Data packets times listeners (multicast fan-out)."""
        return self.data_sent * self.speakers

    @property
    def conservation_residual(self) -> int:
        """``sent - (received + dropped + in-flight)`` per §"every packet
        is somewhere": zero on a lossless LAN, and exactly the wire loss
        otherwise."""
        accounted = (
            self.data_received
            + self.socket_drops
            + self.in_flight
            + self.send_failures * self.speakers
        )
        return self.expected_deliveries - accounted


@dataclass
class PipelineReport:
    """End-to-end numbers for one run: what a perf PR must not regress."""

    duration: float
    latency: dict = field(default_factory=dict)     # e2e producer->DAC write
    arrival: dict = field(default_factory=dict)     # producer->speaker rx
    jitter: dict = field(default_factory=dict)      # |inter-arrival - nominal|
    underruns: int = 0
    silence_seconds: float = 0.0
    channels: List[ChannelReport] = field(default_factory=list)
    wire_drops: int = 0       # whole frames dropped at the sender (backlog)
    wire_losses: int = 0      # receiver copies lost to random wire loss
    #: itemised injected faults (repro.net.faults.FaultInjector), summed
    #: over every injector attached to the system's links
    injected_losses: int = 0      # copies the injector killed
    injected_duplicates: int = 0  # extra copies the injector minted
    injected_reordered: int = 0   # copies held back past later traffic
    injected_corrupted: int = 0   # copies with a flipped payload byte
    injected_pending: int = 0     # copies still parked for reordering
    #: shared decode cache (repro.codec.cache), summed over the system's
    #: caches — hits are blocks whose host-side decode was skipped
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0
    decode_cache_evictions: int = 0
    #: receivers-per-delivery-event histogram snapshot (net.fanout_batch);
    #: empty when telemetry is disabled or delivery is unbatched
    fanout_batch: dict = field(default_factory=dict)
    #: encode-side cache (repro.codec.cache.EncodeCache), origin mirror of
    #: the decode counters above.  Host-side accounting only: hits skip
    #: numpy work, never virtual CPU time, so these stay out-of-band of
    #: the conservation bound below
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0
    encode_cache_evictions: int = 0
    #: frames-per-real-encoder-invocation histogram (origin.encode_batch);
    #: empty when telemetry is disabled or no real encoder ran
    encode_batch: dict = field(default_factory=dict)
    #: self-healing activity (warm-standby failover + supervision layer)
    failovers: int = 0            # warm-standby takeovers
    standdowns: int = 0           # standbys yielding to a newer epoch
    takeover_latency: dict = field(default_factory=dict)  # silence -> decision
    epoch_resyncs: int = 0        # speaker re-anchors forced by epoch bumps
    rejoins: int = 0              # playback resumptions after an outage
    rejoin_gap: dict = field(default_factory=dict)  # histogram snapshot
    max_rejoin_gap: float = 0.0   # worst audible hole (from speaker stats)
    missed_heartbeats: int = 0    # supervisor scans that found a node silent
    node_restarts: int = 0        # restarts the supervisors drove
    #: vectorized speaker cohorts (repro.core.cohort.SpeakerCohort)
    cohort_members: int = 0       # receivers represented by cohort rows
    cohort_spills: int = 0        # members materialised as full speakers
    cohort_events_saved: int = 0  # delivery events one exemplar stood in for
    #: WAN relay tree (repro.net.wan): link counters summed over every
    #: hop, NACK reliability activity, and relay fallback activity
    wan_sent: int = 0             # frames offered to WAN links (incl. retx)
    wan_delivered: int = 0        # frames the links delivered
    wan_lost: int = 0             # frames the links' loss draw killed
    wan_retransmits: int = 0      # NACK-driven re-sends
    wan_in_flight: int = 0        # scheduled or parked, not yet downstream
    wan_nacks: int = 0            # NACK messages over reverse paths
    wan_recovered: int = 0        # gap positions a retransmit/repair filled
    wan_abandoned: int = 0        # gap positions skipped after timeout
    wan_corrupt_dropped: int = 0  # hop arrivals the parser rejected
    #: application-layer FEC (repro.net.fec), summed over every hop
    #: running a ``"fec"``/``"fec+nack"`` recovery ladder.  Parity frames
    #: are hop-local and never channel data, so they stay out of the
    #: per-channel residual; the *repairs* are deliveries the origin
    #: never re-sent, folded into ``wan_extra_deliveries`` below
    wan_fec_sent: int = 0         # parity frames emitted by encoders
    wan_fec_repaired: int = 0     # data frames reconstructed + injected
    wan_fec_unrepairable: int = 0 # member losses beyond repair capacity
    wan_fec_wasted: int = 0       # parity frames that repaired nothing
    #: per-WAN-link fault injection (dedicated injectors on WanLinks;
    #: LAN injector sums above stay separate because their conservation
    #: budgets scale by the whole fleet, these by the hop's subtree)
    wan_injected_losses: int = 0
    wan_injected_duplicates: int = 0
    wan_injected_reordered: int = 0
    wan_injected_corrupted: int = 0
    relay_fallbacks: int = 0      # local filler sources started
    relay_standdowns: int = 0     # fallbacks yielding to a returned uplink
    relay_filler: int = 0         # filler data blocks minted
    #: Σ per-hop (lost + in-flight/parked + resequencer/parser drops +
    #: injector kills/corruptions + relay-down drops) × subtree speakers
    #: — leaf deliveries the WAN admits to having denied
    wan_lost_deliveries: int = 0
    #: Σ per-hop (retransmits + injected duplicates + FEC repairs +
    #: fallback filler) × subtree speakers — leaf deliveries the tree
    #: minted that the origin never sent
    wan_extra_deliveries: int = 0
    #: dynamic control plane (repro.mgmt.discovery / .controller): all
    #: out-of-band on the management segment, so none of these touch the
    #: audio conservation ledger
    adp_advertises: int = 0       # ENTITY_AVAILABLEs transmitted
    adp_expiries: int = 0         # leases that lapsed at a controller
    adp_departs: int = 0          # clean ENTITY_DEPARTINGs honoured
    acmp_connects: int = 0        # CONNECT_RX transactions completed
    acmp_failures: int = 0        # transactions that exhausted retries
    enumerations: int = 0         # AECP descriptor reads completed
    trace_events: int = 0

    @property
    def decode_cache_hit_rate(self) -> float:
        total = self.decode_cache_hits + self.decode_cache_misses
        return self.decode_cache_hits / total if total else 0.0

    @property
    def encode_cache_hit_rate(self) -> float:
        total = self.encode_cache_hits + self.encode_cache_misses
        return self.encode_cache_hits / total if total else 0.0

    @property
    def total_sent(self) -> int:
        return sum(c.data_sent for c in self.channels)

    @property
    def total_played(self) -> int:
        return sum(c.played for c in self.channels)

    @property
    def conservation_residual(self) -> int:
        return sum(c.conservation_residual for c in self.channels)

    @property
    def conservation_ok(self) -> bool:
        """True when every delivery is accounted for, faults included.

        A frame dropped at the sender loses up to fan-out deliveries; a
        random wire loss or an injected loss kills exactly one receiver
        copy; an injected corruption may turn a copy into garbage the
        speaker cannot attribute to the channel; a copy still parked for
        reordering is in flight.  All of those push the residual up, and
        the residual must fit inside what the network admits to having
        done.  Injected *duplicates* mint extra copies the producer never
        sent, pushing the residual negative — by at most the number of
        duplications.

        WAN hops extend both sides: every frame a hop denied (wire loss,
        injector kill or corruption, in flight, parked for resequencing
        or FEC reassembly, rejected by the parser, or dropped by a dead
        relay) loses up to its subtree's fan-out of leaf deliveries
        (``wan_lost_deliveries``), while NACK retransmits, injected
        duplicates, FEC-repaired frames, and relay fallback filler mint
        deliveries the origin never sent (``wan_extra_deliveries``).
        Parity frames themselves never enter either side: they are not
        channel data, so ``wan_fec_sent``/``wan_fec_wasted`` are pure
        overhead rows, and only ``wan_fec_repaired`` (inside
        ``wan_extra_deliveries``) touches the bound."""
        bound = (
            self.wire_drops * max(
                (c.speakers for c in self.channels), default=1
            )
            + self.wire_losses
            + self.injected_losses
            + self.injected_corrupted
            + self.injected_pending
            + self.wan_lost_deliveries
        )
        floor = -(self.injected_duplicates + self.wan_extra_deliveries)
        return floor <= self.conservation_residual <= bound

    def summary(self) -> str:
        """Ascii rendering, built on the :mod:`repro.metrics.report`
        helpers (the same tables the benchmarks print)."""
        lat_rows = []
        for label, snap in (("e2e latency (s)", self.latency),
                            ("arrival latency (s)", self.arrival),
                            ("jitter (s)", self.jitter),
                            ("fanout batch (rx)", self.fanout_batch),
                            ("origin batch (frames)", self.encode_batch),
                            ("takeover latency (s)", self.takeover_latency),
                            ("rejoin gap (s)", self.rejoin_gap)):
            if snap:
                lat_rows.append([
                    label, snap["count"], snap["mean"], snap["p50"],
                    snap["p90"], snap["p99"], snap["max"],
                ])
        parts = []
        if lat_rows:
            parts.append(ascii_table(
                ["series", "count", "mean", "p50", "p90", "p99", "max"],
                lat_rows,
            ))
        parts.append(ascii_table(
            ["channel", "sent", "rx", "played", "late", "dup", "reord",
             "undec", "epoch", "sockdrop", "inflight", "residual",
             "ratio"],
            [
                [c.name, c.data_sent, c.data_received, c.played,
                 c.late_dropped, c.dup_dropped, c.reorder_dropped,
                 c.decode_failed, c.epoch_dropped, c.socket_drops,
                 c.in_flight, c.conservation_residual,
                 c.compression_ratio]
                for c in self.channels
            ],
        ))
        rows = [
            ["duration (s)", self.duration],
            ["underruns", self.underruns],
            ["silence (s)", self.silence_seconds],
            ["wire drops", self.wire_drops],
            ["wire losses", self.wire_losses],
        ]
        if (self.injected_losses or self.injected_duplicates
                or self.injected_reordered or self.injected_corrupted
                or self.injected_pending):
            rows += [
                ["injected losses", self.injected_losses],
                ["injected duplicates", self.injected_duplicates],
                ["injected reordered", self.injected_reordered],
                ["injected corrupted", self.injected_corrupted],
                ["injected pending", self.injected_pending],
            ]
        if self.decode_cache_hits or self.decode_cache_misses:
            rows += [
                ["decode cache hits", self.decode_cache_hits],
                ["decode cache misses", self.decode_cache_misses],
                ["decode cache evictions", self.decode_cache_evictions],
                ["decode cache hit rate",
                 round(self.decode_cache_hit_rate, 4)],
            ]
        if self.encode_cache_hits or self.encode_cache_misses:
            rows += [
                ["encode cache hits", self.encode_cache_hits],
                ["encode cache misses", self.encode_cache_misses],
                ["encode cache evictions", self.encode_cache_evictions],
                ["encode cache hit rate",
                 round(self.encode_cache_hit_rate, 4)],
            ]
        if (self.failovers or self.standdowns or self.rejoins
                or self.missed_heartbeats or self.node_restarts
                or self.epoch_resyncs):
            rows += [
                ["failovers (takeovers)", self.failovers],
                ["standby stand-downs", self.standdowns],
                ["epoch resyncs", self.epoch_resyncs],
                ["rejoins", self.rejoins],
                ["max rejoin gap (s)", round(self.max_rejoin_gap, 4)],
                ["missed heartbeats", self.missed_heartbeats],
                ["node restarts", self.node_restarts],
            ]
        if self.cohort_members:
            rows += [
                ["cohort members", self.cohort_members],
                ["cohort spills", self.cohort_spills],
                ["cohort events saved", self.cohort_events_saved],
            ]
        if self.wan_sent or self.relay_fallbacks:
            rows += [
                ["wan sent", self.wan_sent],
                ["wan delivered", self.wan_delivered],
                ["wan lost", self.wan_lost],
                ["wan delivery rate",
                 round(ratio(self.wan_delivered, self.wan_sent), 4)],
                ["wan retransmits", self.wan_retransmits],
                ["wan nacks", self.wan_nacks],
                ["wan recovered", self.wan_recovered],
                ["wan abandoned", self.wan_abandoned],
                ["wan in flight", self.wan_in_flight],
            ]
            if self.wan_fec_sent or self.wan_fec_repaired:
                rows += [
                    ["wan fec parity sent", self.wan_fec_sent],
                    ["wan fec repaired", self.wan_fec_repaired],
                    ["wan fec unrepairable", self.wan_fec_unrepairable],
                    ["wan fec wasted", self.wan_fec_wasted],
                ]
            if (self.wan_injected_losses or self.wan_injected_duplicates
                    or self.wan_injected_reordered
                    or self.wan_injected_corrupted
                    or self.wan_corrupt_dropped):
                rows += [
                    ["wan injected losses", self.wan_injected_losses],
                    ["wan injected duplicates",
                     self.wan_injected_duplicates],
                    ["wan injected reordered", self.wan_injected_reordered],
                    ["wan injected corrupted", self.wan_injected_corrupted],
                    ["wan corrupt dropped", self.wan_corrupt_dropped],
                ]
            rows += [
                ["relay fallbacks", self.relay_fallbacks],
                ["relay stand-downs", self.relay_standdowns],
                ["relay filler blocks", self.relay_filler],
                ["wan lost deliveries", self.wan_lost_deliveries],
                ["wan extra deliveries", self.wan_extra_deliveries],
            ]
        if (self.adp_advertises or self.adp_expiries
                or self.acmp_connects or self.acmp_failures
                or self.enumerations):
            rows += [
                ["adp advertises", self.adp_advertises],
                ["adp expiries", self.adp_expiries],
                ["adp departs", self.adp_departs],
                ["acmp connects", self.acmp_connects],
                ["acmp failures", self.acmp_failures],
                ["enumerations", self.enumerations],
            ]
        rows += [
            ["trace events", self.trace_events],
            ["conservation ok", str(self.conservation_ok)],
        ]
        parts.append(ascii_table(["quantity", "value"], rows))
        return "\n\n".join(parts)
