"""Sim-clock event tracer with Chrome ``trace_event`` export.

Every span and instant is stamped with the *virtual* clock of the
simulation, so a trace of a run is exactly reproducible: same seed, same
JSON, byte for byte.  The output loads directly into ``chrome://tracing``
or Perfetto (the ``traceEvents`` JSON array format); :meth:`Tracer.summary`
renders the same data as an ascii table for terminals and CI logs.

Spans use explicit tokens (:class:`Span`) rather than a thread-local stack
because simulation processes interleave at ``yield`` points: process A may
open a span, yield to process B which opens and closes its own, and close
afterwards.  Token matching keeps nesting correct under any event order.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.report import ascii_table

#: microseconds per virtual second (chrome traces use µs timestamps)
_US = 1e6


class Span:
    """An open span: the token :meth:`Tracer.begin` hands out."""

    __slots__ = ("name", "cat", "track", "start", "args", "closed")

    def __init__(self, name: str, cat: str, track: str, start: float, args):
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.args = args
        self.closed = False


class _NullSpan(Span):
    """Shared token returned by a disabled tracer (``end`` is a no-op)."""

    def __init__(self):
        super().__init__("", "", "", 0.0, None)
        self.closed = True


NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans, instants, counters, and flows against a sim clock.

    Parameters
    ----------
    clock:
        zero-argument callable returning the current virtual time in
        seconds (``lambda: sim.now``).  Defaults to a frozen zero clock.
    enabled:
        when ``False`` every recording method returns immediately; the
        per-call cost is one attribute test.
    max_events:
        hard cap on retained events.  Beyond it new events are counted in
        :attr:`dropped_events` instead of stored, so a runaway trace cannot
        eat the simulation's memory.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        max_events: int = 200_000,
        max_open_flows: int = 4096,
    ):
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.max_events = max_events
        self.max_open_flows = max_open_flows
        self.events: List[dict] = []
        self.dropped_events = 0
        self._tracks: Dict[str, int] = {}
        self._flows: Dict[Any, Tuple[float, int]] = {}
        self._next_flow_id = 1
        #: per-span-name aggregate: name -> [count, total_dur, max_dur]
        self._agg: Dict[str, List[float]] = {}

    # -- recording ----------------------------------------------------------------

    def begin(self, name: str, track: str = "main", cat: str = "span",
              **args) -> Span:
        """Open a span; returns the token to pass to :meth:`end`."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, cat, track, self.clock(), args or None)

    def end(self, span: Span, **args) -> float:
        """Close ``span``; emits one complete ('X') event.

        Returns the span duration in seconds.  Ending a span twice (or a
        null span) is a harmless no-op returning 0.0.
        """
        if not self.enabled or span.closed:
            return 0.0
        span.closed = True
        now = self.clock()
        dur = now - span.start
        merged = span.args
        if args:
            merged = dict(merged or {}, **args)
        self._emit({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start * _US,
            "dur": dur * _US,
            "pid": 0,
            "tid": self._tid(span.track),
            **({"args": merged} if merged else {}),
        })
        agg = self._agg.get(span.name)
        if agg is None:
            self._agg[span.name] = [1, dur, dur]
        else:
            agg[0] += 1
            agg[1] += dur
            agg[2] = max(agg[2], dur)
        return dur

    def complete(self, name: str, start: float, duration: float,
                 track: str = "main", cat: str = "span", **args) -> None:
        """Record a complete ('X') event with explicit timing.

        For work whose extent is *computed* rather than executed inline —
        a store-and-forward switch knows a frame occupies the egress port
        for [start, start+duration) before the simulator gets there.
        """
        if not self.enabled:
            return
        self._emit({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start * _US,
            "dur": duration * _US,
            "pid": 0,
            "tid": self._tid(track),
            **({"args": args} if args else {}),
        })
        agg = self._agg.get(name)
        if agg is None:
            self._agg[name] = [1, duration, duration]
        else:
            agg[0] += 1
            agg[1] += duration
            agg[2] = max(agg[2], duration)

    @contextmanager
    def span(self, name: str, track: str = "main", cat: str = "span", **args):
        """Context manager form of :meth:`begin`/:meth:`end`.

        Only for non-yielding code: wrapping a simulation ``yield`` in a
        ``with`` block would close the span at the wrong virtual time if
        the process is killed.  Generator code should use the token API.
        """
        token = self.begin(name, track=track, cat=cat, **args)
        try:
            yield token
        finally:
            self.end(token)

    def instant(self, name: str, track: str = "main", cat: str = "instant",
                **args) -> None:
        """A zero-duration marker (buffer high-water, drop, resync...)."""
        if not self.enabled:
            return
        self._emit({
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self.clock() * _US,
            "pid": 0,
            "tid": self._tid(track),
            **({"args": args} if args else {}),
        })

    def counter(self, name: str, track: str = "main", **values) -> None:
        """A counter ('C') sample; ``values`` become the stacked series."""
        if not self.enabled:
            return
        self._emit({
            "name": name,
            "ph": "C",
            "ts": self.clock() * _US,
            "pid": 0,
            "tid": self._tid(track),
            "args": values,
        })

    # -- flows (cross-process latency) ---------------------------------------------

    def flow_begin(self, key, name: str, track: str = "main") -> None:
        """Mark the start of a flow (e.g. a packet leaving the producer).

        ``key`` is any hashable correlation key — ``(channel_id, seq)``
        for packets.  Open flows are bounded: the oldest is evicted past
        ``max_open_flows`` (a flood of never-received packets must not
        grow memory).
        """
        if not self.enabled:
            return
        if len(self._flows) >= self.max_open_flows:
            self._flows.pop(next(iter(self._flows)))
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self._flows[key] = (self.clock(), flow_id)
        self._emit({
            "name": name,
            "cat": "flow",
            "ph": "s",
            "id": flow_id,
            "ts": self.clock() * _US,
            "pid": 0,
            "tid": self._tid(track),
        })

    def flow_end(self, key, name: str, track: str = "main",
                 pop: bool = False) -> Optional[float]:
        """Mark a flow's arrival; returns the elapsed seconds since its
        :meth:`flow_begin`, or ``None`` for an unknown key.

        With ``pop=False`` (the default) the origin stays registered so a
        multicast flow can terminate at every receiver.
        """
        if not self.enabled:
            return None
        entry = self._flows.pop(key, None) if pop else self._flows.get(key)
        if entry is None:
            return None
        start, flow_id = entry
        now = self.clock()
        self._emit({
            "name": name,
            "cat": "flow",
            "ph": "f",
            "bp": "e",
            "id": flow_id,
            "ts": now * _US,
            "pid": 0,
            "tid": self._tid(track),
        })
        return now - start

    # -- internals ----------------------------------------------------------------

    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[track] = tid
        return tid

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    # -- export -------------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The full trace as a Chrome ``trace_event`` JSON object."""
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in self._tracks.items()
        ]
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated", "unit": "us"},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True)

    def write(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def summary_rows(self) -> List[List]:
        rows = []
        for name in sorted(self._agg):
            count, total, peak = self._agg[name]
            rows.append([
                name, int(count), total * 1e3,
                (total / count) * 1e3 if count else 0.0, peak * 1e3,
            ])
        return rows

    def summary(self) -> str:
        """Ascii per-span-name aggregate (count and ms totals)."""
        return ascii_table(
            ["span", "count", "total_ms", "mean_ms", "max_ms"],
            self.summary_rows(),
        )

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0
        self._flows.clear()
        self._agg.clear()


#: shared disabled tracer, used by :data:`repro.metrics.telemetry.NULL`
NULL_TRACER = Tracer(enabled=False)
