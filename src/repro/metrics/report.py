"""Plain-text tables for benchmark output (paper-vs-measured rows)."""

from __future__ import annotations

from typing import Iterable, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as a fixed-width table (numbers get 3 decimals)."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ratio(numerator: float, denominator: float) -> float:
    """A safe rate for report rows: 0.0 when the denominator is empty
    (e.g. WAN delivery rate on a run that never touched a WAN hop)."""
    return numerator / denominator if denominator else 0.0


def percent(numerator: float, denominator: float) -> float:
    """``ratio`` as a percentage, rounded for report rows (FEC overhead,
    repair rates, loss sweeps)."""
    return round(100.0 * ratio(numerator, denominator), 2)


def series_summary(values: Sequence[float]) -> dict:
    """min/mean/max of a series (for time-series figures)."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
    }
