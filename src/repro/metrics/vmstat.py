"""A vmstat-alike: periodic snapshots of a machine's CPU counters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.sim.process import Process, Sleep

if TYPE_CHECKING:  # import kept out of runtime: the kernel (via the net
    # package's monitor) imports repro.metrics, and a module-level import
    # here would close that loop
    from repro.kernel.machine import Machine


@dataclass(frozen=True)
class VmstatSample:
    """One sampling interval's deltas."""

    time: float
    context_switches: int  # switches during the interval
    user_pct: float
    sys_pct: float
    intr_pct: float
    idle_pct: float

    @property
    def busy_pct(self) -> float:
        return self.user_pct + self.sys_pct + self.intr_pct


class VmstatSampler:
    """Samples a machine's CPU at a fixed interval, like ``vmstat 1``.

    The sampling process itself is run *outside* the sampled machine's CPU
    (a serial-console observer, so to speak): it costs the target nothing,
    which keeps the measurement honest.
    """

    def __init__(self, machine: Machine, interval: float = 1.0):
        self.machine = machine
        self.interval = interval
        self.samples: List[VmstatSample] = []
        self._proc: Optional[Process] = None

    def start(self) -> Process:
        self._proc = Process.spawn(
            self.machine.sim, self._run(), name=f"vmstat-{self.machine.name}"
        )
        return self._proc

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()

    def _run(self):
        stats = self.machine.cpu.stats
        prev = stats.snapshot()
        while True:
            yield Sleep(self.interval)
            snap = stats.snapshot()
            self.samples.append(
                VmstatSample(
                    time=self.machine.sim.now,
                    context_switches=(
                        snap["context_switches"] - prev["context_switches"]
                    ),
                    user_pct=self._pct(snap, prev, "user"),
                    sys_pct=self._pct(snap, prev, "sys"),
                    intr_pct=self._pct(snap, prev, "intr"),
                    idle_pct=max(
                        0.0,
                        100.0
                        - self._pct(snap, prev, "user")
                        - self._pct(snap, prev, "sys")
                        - self._pct(snap, prev, "intr"),
                    ),
                )
            )
            prev = snap

    def _pct(self, snap: dict, prev: dict, domain: str) -> float:
        return 100.0 * (snap[domain] - prev[domain]) / self.interval

    # -- aggregates ---------------------------------------------------------------

    def mean_context_switch_rate(self) -> float:
        """Mean switches per interval — the 'mean' in Figure 5's legend."""
        if not self.samples:
            return 0.0
        return sum(s.context_switches for s in self.samples) / len(self.samples)

    def mean_user_pct(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.user_pct for s in self.samples) / len(self.samples)

    def mean_busy_pct(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.busy_pct for s in self.samples) / len(self.samples)
